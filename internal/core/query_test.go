package core

import (
	"math"
	"testing"

	"repro/internal/aggfunc"
)

func query(k aggfunc.Kind) aggfunc.Query {
	return aggfunc.Query{Kind: k, ReadingMin: 10, ReadingMax: 100}
}

func TestRunQuerySumMatchesRun(t *testing.T) {
	env, p := run(t, 300, 31, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	out, err := p.RunQuery(query(aggfunc.Sum), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 {
		t.Errorf("rounds = %d", out.Rounds)
	}
	if !out.Accepted {
		t.Error("clean query rejected")
	}
	if out.Truth != float64(env.TrueSum()) {
		t.Errorf("truth = %g, want %d", out.Truth, env.TrueSum())
	}
	// Near-complete participation on the ideal channel.
	if out.Error() > 0.08*out.Truth {
		t.Errorf("sum error %g too large (truth %g)", out.Error(), out.Truth)
	}
}

func TestRunQueryAverage(t *testing.T) {
	env, p := run(t, 300, 33, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	out, err := p.RunQuery(query(aggfunc.Average), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 {
		t.Errorf("rounds = %d (vector aggregation runs one round)", out.Rounds)
	}
	// The average is robust to losing whole clusters: both components travel
	// together, so they lose exactly the same participants.
	if out.Error() > 2.0 {
		t.Errorf("avg = %g vs truth %g", out.Value, out.Truth)
	}
}

func TestRunQueryVariance(t *testing.T) {
	env, p := run(t, 300, 35, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	out, err := p.RunQuery(query(aggfunc.Variance), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 1 {
		t.Errorf("rounds = %d", out.Rounds)
	}
	if out.Truth <= 0 {
		t.Fatalf("uniform readings must have positive variance, truth = %g", out.Truth)
	}
	if out.Error() > 0.15*out.Truth {
		t.Errorf("variance = %g vs truth %g", out.Value, out.Truth)
	}
}

func TestRunQueryMaxMin(t *testing.T) {
	env, p := run(t, 300, 37, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	for _, k := range []aggfunc.Kind{aggfunc.Max, aggfunc.Min} {
		out, err := p.RunQuery(query(k), 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rounds != 1 {
			t.Errorf("%v rounds = %d (all buckets travel in one vector)", k, out.Rounds)
		}
		// Exact at bucket resolution when the extreme node participated;
		// allow one extra bucket for non-participation.
		tol := 2 * 90.0 / (aggfunc.BucketCount - 1)
		if math.Abs(out.Value-out.Truth) > tol {
			t.Errorf("%v = %g vs truth %g (tol %g)", k, out.Value, out.Truth, tol)
		}
	}
}

func TestRunQueryPollutionFlagsOutcome(t *testing.T) {
	env, p := run(t, 400, 39, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	polluter := p.PickAttacker(false)
	if polluter < 0 {
		t.Skip("no attacker available")
	}
	_, p2 := run(t, 400, 39, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 9000
	})
	out, err := p2.RunQuery(query(aggfunc.Average), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("polluted query should be rejected")
	}
}

func TestRunQueryInvalid(t *testing.T) {
	_, p := run(t, 50, 41, true, nil)
	if _, err := p.RunQuery(aggfunc.Query{Kind: 0}, 1); err == nil {
		t.Error("invalid query should fail")
	}
}
