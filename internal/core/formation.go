package core

import (
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/shares"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Hello roles carried in the formation flood.
const (
	helloMember = 0 // plain flood relay
	helloHead   = 1 // the sender is a cluster head accepting joins
	helloBase   = 3 // the base station's root beacon
)

// sendHello broadcasts a formation beacon. Every node forwards the query
// flood exactly once (CPDA disseminates the query through the whole
// network); heads mark their rebroadcast so neighbours learn whom they can
// join.
func (p *Protocol) sendHello(from topo.NodeID, role uint8, hops int) {
	p.env.MAC.Send(message.Build(
		message.KindHello, from, message.BroadcastID, p.round,
		message.MarshalHello(message.Hello{Origin: from, Role: role, Hops: uint16(hops)}),
	))
}

// receive dispatches every frame delivered to (or overheard by) a node.
func (p *Protocol) receive(at topo.NodeID, msg *message.Message) {
	if msg.Round < p.round {
		// Every round drains the engine completely before the next one
		// starts, so no legitimate frame can carry an earlier round stamp:
		// a stale frame is a replay, and absorbing it would double-count
		// its cluster. Drop it and record the catch.
		cluster := trace.NoCluster
		if st := &p.nodes[at]; st.head >= 0 {
			cluster = st.head
		}
		p.emit(at, cluster, "", trace.TypeWitness, "stale-round",
			"replayed %s from %d round=%d current=%d", msg.Kind, msg.From, msg.Round, p.round)
		return
	}
	switch msg.Kind {
	case message.KindHello:
		p.onHello(at, msg)
	case message.KindJoin:
		p.onJoin(at, msg)
	case message.KindRoster:
		p.onRoster(at, msg)
	case message.KindShare:
		p.onShare(at, msg)
	case message.KindRelay:
		p.onRelay(at, msg)
	case message.KindAssembled:
		p.onAssembled(at, msg)
	case message.KindRepoll:
		p.onRepoll(at, msg)
	case message.KindReassemble:
		p.onReassemble(at, msg)
	case message.KindSubShare:
		p.onSubShare(at, msg)
	case message.KindSubAssembled:
		p.onSubAssembled(at, msg)
	case message.KindTakeover:
		p.onTakeover(at, msg)
	case message.KindAnnounce:
		p.onAnnounce(at, msg)
	case message.KindReading:
		p.onPlainReading(at, msg)
	case message.KindAlarm:
		p.onAlarm(at, msg)
	}
}

// onHello drives the query flood, head election, and join-candidate
// collection.
func (p *Protocol) onHello(at topo.NodeID, msg *message.Message) {
	if at == topo.BaseStationID {
		return
	}
	h, err := message.UnmarshalHello(msg.Payload)
	if err != nil {
		return
	}
	st := &p.nodes[at]
	switch h.Role {
	case helloHead:
		st.heardCH = append(st.heardCH, chInfo{id: msg.From, hops: int(h.Hops)})
	case helloBase:
		st.bsDirect = true
	}
	if st.role != roleUnassigned {
		return
	}
	// First HELLO: adopt the flood parent, elect, and rebroadcast. Jitter
	// desynchronises each flood wave.
	st.helloParent = msg.From
	st.hops = int(h.Hops) + 1
	hops := st.hops
	if p.env.Rng.Float64() < p.cfg.Pc {
		st.role = roleHead
		st.head = at
		p.emit(at, at, trace.PhaseFormation, trace.TypeElection, "pc-draw", "became head at hops=%d", hops)
		p.env.Eng.After(p.jitter(80*time.Millisecond), func() { p.sendHello(at, helloHead, hops) })
		return
	}
	st.role = roleMember
	p.env.Eng.After(p.jitter(80*time.Millisecond), func() { p.sendHello(at, helloMember, hops) })
	if !st.joinOn {
		st.joinOn = true
		p.env.Eng.After(p.cfg.JoinWait, func() { p.join(at) })
	}
}

// join picks a uniformly random cluster head among those heard (CPDA-style;
// random choice balances cluster sizes). A member with no head in radio
// range promotes itself to head — the adaptive repair that keeps cluster
// coverage tracking network connectivity instead of head percolation.
func (p *Protocol) join(at topo.NodeID) {
	st := &p.nodes[at]
	if st.role != roleMember {
		return
	}
	if len(st.heardCH) == 0 {
		st.role = roleHead
		st.head = at
		p.emit(at, at, trace.PhaseFormation, trace.TypeElection, "no-head-in-range", "self-promoted")
		p.sendHello(at, helloHead, st.hops)
		return
	}
	best := st.heardCH[p.env.Rng.Intn(len(st.heardCH))]
	st.head = best.id
	if p.env.Sink != nil {
		p.emit(at, best.id, trace.PhaseFormation, trace.TypeJoin, "", "joining head %d", best.id)
	}
	p.env.MAC.Send(message.Build(
		message.KindJoin, at, best.id, p.round,
		message.MarshalJoin(message.Join{Head: best.id, Seed: shares.SeedFor(int(at))}),
	))
}

// onJoin records a member at its elected head.
func (p *Protocol) onJoin(at topo.NodeID, msg *message.Message) {
	if msg.To != at {
		return
	}
	st := &p.nodes[at]
	if st.role != roleHead || at == topo.BaseStationID {
		return
	}
	j, err := message.UnmarshalJoin(msg.Payload)
	if err != nil || j.Head != at {
		return
	}
	if p.inRepair {
		// Cross-round churn repair: the joiner is an orphan of a dead head.
		// Queue it for the extended roster repairFinalize publishes, dedup'd
		// against current members and earlier adoptees.
		for _, e := range st.roster.Entries {
			if e.ID == msg.From {
				return
			}
		}
		for _, e := range st.repairJoiners {
			if e.ID == msg.From {
				return
			}
		}
		if len(st.roster.Entries)+len(st.repairJoiners) >= message.MaxClusterSize {
			return
		}
		st.repairJoiners = append(st.repairJoiners, message.RosterEntry{ID: msg.From, Seed: j.Seed})
		return
	}
	if len(st.joiners) >= message.MaxClusterSize-1 {
		return // cluster full; late joiners are excluded by the roster
	}
	st.joiners = append(st.joiners, message.RosterEntry{ID: msg.From, Seed: j.Seed})
}

// broadcastRosters runs the two-stage roster phase. Stage one (now): every
// undersized head dissolves — it broadcasts an empty roster so its joiners
// re-join elsewhere, and itself joins a neighbouring head. Stage two
// (half-way to the shares phase): surviving heads broadcast their final
// membership, jittered and repeated once for broadcast-loss resilience (a
// member that misses its roster cannot participate, which would fail the
// whole cluster).
func (p *Protocol) broadcastRosters() {
	p.phaseMark(trace.PhaseRoster, "dissolution + final roster broadcasts")
	window := p.cfg.SharesAt - p.cfg.RosterAt
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleHead {
			continue
		}
		if !p.cfg.NoMerge && !shares.Viable(1+len(st.joiners)) && len(p.otherHeads(id)) > 0 {
			p.dissolve(id)
		}
	}
	p.env.Eng.After(window/2, func() { p.finalRosters() })
}

// otherHeads lists the heads a node heard, excluding itself.
func (p *Protocol) otherHeads(id topo.NodeID) []chInfo {
	st := &p.nodes[id]
	out := make([]chInfo, 0, len(st.heardCH))
	for _, c := range st.heardCH {
		if c.id != id {
			out = append(out, c)
		}
	}
	return out
}

// dissolve demotes an undersized head to member: empty-roster broadcast
// releases its joiners, and the ex-head joins a random neighbouring head.
func (p *Protocol) dissolve(id topo.NodeID) {
	st := &p.nodes[id]
	payload, err := message.MarshalRoster(message.Roster{Head: id})
	if err != nil {
		return
	}
	p.env.Eng.After(p.jitter(50*time.Millisecond), func() {
		p.env.MAC.Send(message.Build(message.KindRoster, id, message.BroadcastID, p.round, payload))
	})
	st.role = roleMember
	st.joiners = nil
	p.lifecycle(id, id, trace.PhaseRoster, trace.StateDissolved, "undersized cluster released its joiners")
	p.rejoin(id, id)
}

// rejoin sends a fresh Join to a random heard head other than `not`.
func (p *Protocol) rejoin(at, not topo.NodeID) {
	st := &p.nodes[at]
	candidates := make([]chInfo, 0, len(st.heardCH))
	for _, c := range st.heardCH {
		if c.id != not && c.id != at {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		st.head = -1
		return // no alternative: uncovered this round
	}
	best := candidates[p.env.Rng.Intn(len(candidates))]
	st.head = best.id
	p.env.MAC.Send(message.Build(
		message.KindJoin, at, best.id, p.round,
		message.MarshalJoin(message.Join{Head: best.id, Seed: shares.SeedFor(int(at))}),
	))
}

// finalRosters publishes surviving heads' membership.
func (p *Protocol) finalRosters() {
	window := (p.cfg.SharesAt - p.cfg.RosterAt) / 2
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleHead {
			continue
		}
		roster := message.Roster{Head: id}
		roster.Entries = append(roster.Entries,
			message.RosterEntry{ID: id, Seed: shares.SeedFor(int(id))})
		roster.Entries = append(roster.Entries, st.joiners...)
		canonicalizeSeeds(roster.Entries)
		payload, err := message.MarshalRoster(roster)
		if err != nil {
			continue
		}
		p.installRoster(id, roster)
		if p.env.Sink != nil {
			p.lifecycle(id, id, trace.PhaseRoster, trace.StateFormed,
				"roster published: m=%d deputy=%d", len(roster.Entries), p.nodes[id].deputy)
		}
		jitter := p.jitter(window / 4)
		p.env.Eng.After(jitter, func() {
			p.env.MAC.Send(message.Build(message.KindRoster, id, message.BroadcastID, p.round, payload))
		})
		p.env.Eng.After(jitter+window/2, func() {
			p.env.MAC.Send(message.Build(message.KindRoster, id, message.BroadcastID, p.round, payload))
		})
	}
}

// onRoster installs the cluster parameters at a member, or processes a
// dissolution (empty roster): every overhearing node forgets the dissolved
// head (so announce routing never targets it), and its members re-join.
// Two failover variants ride on the same wire format: a deputy dissolving
// its dead head's unviable remnant (empty roster naming the dead head), and
// a deputy's promotion roster (it announces itself head of the surviving
// remnant).
func (p *Protocol) onRoster(at topo.NodeID, msg *message.Message) {
	st := &p.nodes[at]
	r, err := message.UnmarshalRoster(msg.Payload)
	if err != nil {
		return
	}
	if len(r.Entries) == 0 && r.Head != msg.From {
		// Deputy-announced dissolution of a dead head's remnant: only that
		// cluster's members act, and only on their designated deputy's word.
		if st.head != r.Head || st.deputy != msg.From || at == msg.From {
			return
		}
		if st.role == roleHead {
			if at != r.Head {
				return
			}
			// We are the crashed-and-recovered head itself: the cluster is
			// gone; stand down and re-join like any orphan.
			st.role = roleMember
			st.joiners = nil
		}
		st.headSilent = false
		p.forgetHead(st, r.Head)
		p.clearClusterState(st)
		p.rejoin(at, r.Head)
		return
	}
	if r.Head != msg.From {
		return
	}
	if len(r.Entries) == 0 {
		p.forgetHead(st, msg.From)
		if st.role == roleMember && st.head == msg.From {
			p.rejoin(at, msg.From)
		}
		return
	}
	if st.role == roleHead && at != msg.From && st.head == at && st.deputy == msg.From {
		// We crashed as head, recovered, and our old deputy has permanently
		// taken the cluster over: stand down and join it directly.
		st.role = roleMember
		st.joiners = nil
		p.clearClusterState(st)
		st.head = msg.From
		p.emit(at, msg.From, trace.PhaseRepair, trace.TypeRecover, "deputy-promoted",
			"recovered head standing down; deputy %d now heads the cluster", msg.From)
		p.env.MAC.Send(message.Build(
			message.KindJoin, at, msg.From, p.round,
			message.MarshalJoin(message.Join{Head: msg.From, Seed: shares.SeedFor(int(at))}),
		))
		return
	}
	if st.role != roleMember {
		return
	}
	if st.head != msg.From {
		if st.deputy != msg.From {
			return
		}
		// Promotion roster: our deputy stood in for (or succeeded) the dead
		// head. Adopt it — integrity does not rest on head identity but on
		// the F-row witnessing, which survives the promotion unchanged.
		st.head = msg.From
		st.headSilent = false
	}
	p.installRoster(at, r)
}

// canonicalizeSeeds overwrites every roster entry's seed with the position
// seed SeedFor(index) before publication. Seeds only need to be distinct and
// known to all cluster members — nothing in the algebra depends on which node
// holds which seed — so a head publishing {1..m} makes every size-m cluster
// algebraically identical: one Vandermonde weights table per size (shared via
// Protocol.algebraFor), and the batch solver can group whole rounds of
// clusters by size. The Join wire format still carries ID-derived seeds for
// compatibility; heads ignore them at publication.
func canonicalizeSeeds(entries []message.RosterEntry) {
	for i := range entries {
		entries[i].Seed = shares.SeedFor(i)
	}
}

// algebraFor returns the share algebra for a roster, serving canonical
// position-seeded rosters ({1..m}) from a per-size cache so all clusters of
// one size share a single weights table and Lagrange-subset cache.
// Non-canonical rosters (none are produced by this code, but the wire format
// permits them) get a private algebra as before.
func (p *Protocol) algebraFor(entries []message.RosterEntry) (*shares.Algebra, error) {
	canonical := true
	for i, e := range entries {
		if e.Seed != shares.SeedFor(i) {
			canonical = false
			break
		}
	}
	if canonical {
		if a, ok := p.algebras[len(entries)]; ok {
			return a, nil
		}
	}
	seeds := make([]field.Element, len(entries))
	for i, e := range entries {
		seeds[i] = e.Seed
	}
	a, err := shares.NewAlgebra(seeds)
	if err != nil {
		return nil, err
	}
	if canonical {
		if p.algebras == nil {
			p.algebras = make(map[int]*shares.Algebra)
		}
		p.algebras[len(entries)] = a
	}
	return a, nil
}

// installRoster prepares the share algebra for a node's cluster view and
// designates the failover deputy (highest-seed entry other than the head),
// which every roster holder computes locally — zero extra wire bytes.
func (p *Protocol) installRoster(at topo.NodeID, r message.Roster) {
	st := &p.nodes[at]
	st.roster = r
	st.myIdx = -1
	st.deputy = -1
	for i, e := range r.Entries {
		if e.ID == at {
			st.myIdx = i
			break
		}
	}
	if st.myIdx < 0 {
		return // excluded (cluster was full)
	}
	if !shares.Viable(len(r.Entries)) {
		return // undersized: handled by policy at the shares phase
	}
	algebra, err := p.algebraFor(r.Entries)
	if err != nil {
		return // corrupt roster (duplicate seeds); cluster cannot run
	}
	st.algebra = algebra
	st.recvShares = growRows(st.recvShares, len(r.Entries))
	st.fSeen = growAssembled(st.fSeen, len(r.Entries))
	st.fSeenMask = 0
	if !p.cfg.NoFailover {
		st.deputy = deputyOf(r)
	}
}
