// Package core implements the reproduced paper's contribution: a
// cluster-based data aggregation protocol that preserves privacy through
// CPDA-style in-cluster secret sharing and enforces integrity through
// in-cluster witnessing over the shared wireless medium.
//
// Protocol phases (see DESIGN.md for the reconstruction rationale):
//
//  1. Cluster formation — the base station floods HELLO; on first receipt a
//     node elects itself cluster head (CH) with probability Pc, otherwise it
//     joins a nearby CH. CHs form an aggregation tree rooted at the base
//     station.
//  2. Privacy-preserving in-cluster aggregation — members exchange
//     link-encrypted polynomial shares (package shares), broadcast their
//     assembled column sums in cleartext, and the CH solves the Vandermonde
//     system for the cluster sum.
//  3. Integrity-enforcing aggregation — each CH unicasts an Announce up the
//     CH tree carrying its cluster sum and an echo of every child
//     contribution. Cluster members witness the cluster-sum component
//     (they can solve for it themselves), child CHs witness their echoed
//     entries, and any mismatch raises an Alarm that honest CHs forward to
//     the base station, which then rejects the round.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/shares"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/wsn"
)

// UndersizedPolicy says what a cluster smaller than shares.MinClusterSize
// does.
type UndersizedPolicy int

// Undersized cluster policies.
const (
	// UndersizedDrop excludes the cluster's readings from the round
	// (privacy preserved, data lost) — the default.
	UndersizedDrop UndersizedPolicy = iota + 1
	// UndersizedPlain reports readings link-encrypted to the CH without
	// slicing (data preserved, in-cluster privacy sacrificed) — ablation.
	UndersizedPlain
)

// PollutionTarget selects what the attacker tampers with.
type PollutionTarget int

// Pollution attack variants.
const (
	// PolluteOwnSum inflates the attacker CH's announced cluster sum.
	PolluteOwnSum PollutionTarget = iota + 1
	// PolluteChild tampers with one echoed child entry.
	PolluteChild
)

// Config tunes the protocol.
type Config struct {
	Pc         float64       // cluster-head election probability
	JoinWait   time.Duration // member wait before picking a CH
	RosterAt   time.Duration // CH roster broadcast time
	SharesAt   time.Duration // share-exchange phase start
	AssembleAt time.Duration // assembled-broadcast phase start
	AggAt      time.Duration // CH-tree aggregation start
	EpochSlot  time.Duration // per-hop transmission window
	MaxHops    int
	Undersized UndersizedPolicy
	// NoMerge disables the undersized-cluster dissolution/re-join repair
	// (ablation: exposes the raw head-election cluster-size distribution).
	NoMerge bool
	// NoWitness strips the integrity machinery (ablation: announces carry
	// no F-vector echo and nobody verifies them), isolating what integrity
	// enforcement costs on top of privacy-preserving aggregation.
	NoWitness bool
	// NoDegrade disables degraded subset recovery (ablation: a cluster
	// whose share exchange is still incomplete after the repoll fails the
	// whole round instead of re-aggregating over the maximal common
	// participant subset).
	NoDegrade bool

	// Attack configuration: Polluter < 0 disables the attack.
	Polluter       topo.NodeID
	PollutionDelta int64
	Target         PollutionTarget
	// PolluteFromRound delays the attack: the compromised head behaves
	// honestly in rounds below this number (0 = attack from the start).
	PolluteFromRound uint16
	// Colluders cooperate with the polluter: they never raise alarms and
	// silently drop alarms they would otherwise flood onward. This is the
	// paper's future-work collusive-attack model, implemented so the
	// degradation of detection can be measured (experiment F10).
	Colluders map[topo.NodeID]bool

	// CrashRate is the fraction of sensor nodes that fail-stop at a random
	// instant during the round (failure injection; experiment F12).
	CrashRate float64
	// HeadCrashRate is the fraction of elected cluster heads that fail-stop
	// at a random instant between the shares phase and the announce phase —
	// the targeted injection behind the head-failover experiment (F18). It
	// is applied per round, including retained rounds.
	HeadCrashRate float64
	// CrashAt fail-stops specific nodes at given instants (deterministic
	// crash schedule for tests; applied on top of the random injections).
	CrashAt map[topo.NodeID]time.Duration
	// CrashRecover reboots every crashed node at the next round boundary
	// (RunRetaining), exercising the crash-and-recover repair path instead
	// of pure fail-stop.
	CrashRecover bool

	// NoFailover disables deputy head-failover entirely (ablation): no
	// watchdogs, no takeovers, no cross-round promotion or orphan re-join.
	NoFailover bool
	// TakeoverForger, when >= 0 and the deputy of a viable cluster, fires a
	// takeover at the watchdog deadline even though its head announced — the
	// dual-announce attack a compromised deputy could mount. Witnesses that
	// observed both announcements must reject the round.
	TakeoverForger topo.NodeID

	// ActiveClusters, when non-nil, restricts which cluster heads
	// contribute their cluster sums (the O(log N) localization bisects
	// this set). Inactive CHs still relay children.
	ActiveClusters map[topo.NodeID]bool

	// Parallelism caps the worker pool the round engine fans the
	// share-nothing per-cluster work (share preparation, batched cluster
	// solves) out to. 0 means runtime.GOMAXPROCS; 1 forces the serial path.
	// Results are bit-identical for every value — the pool only executes
	// pure per-node work between deterministic serial passes.
	Parallelism int
}

// DefaultConfig returns the reconstruction's reference parameters.
func DefaultConfig() Config {
	return Config{
		Pc:             0.25,
		JoinWait:       500 * time.Millisecond,
		RosterAt:       2500 * time.Millisecond,
		SharesAt:       3500 * time.Millisecond,
		AssembleAt:     5 * time.Second,
		AggAt:          6 * time.Second,
		EpochSlot:      150 * time.Millisecond,
		MaxHops:        16,
		Undersized:     UndersizedDrop,
		Polluter:       -1,
		Target:         PolluteOwnSum,
		TakeoverForger: -1,
	}
}

// Node roles.
const (
	roleUnassigned = 0
	roleHead       = 1
	roleMember     = 2
)

type chInfo struct {
	id   topo.NodeID
	hops int
}

type nodeState struct {
	role        int
	hops        int         // flood depth (hops from the base station)
	helloParent topo.NodeID // the node we first heard the query from
	bsDirect    bool        // heard the base station's own beacon
	heardCH     []chInfo    // head HELLOs heard (join candidates)
	joinOn      bool

	head    topo.NodeID // members/heads: own cluster head (self for heads)
	joiners []message.RosterEntry

	roster  message.Roster
	myIdx   int // index in roster, -1 if excluded
	algebra *shares.Algebra

	recvShares [][]field.Element // by roster index: component vector
	recvMask   uint64

	// fSeen holds the assembled reports by roster index; fSeenMask says
	// which slots are live. A dense slice (sized by installRoster, backing
	// array reused across rounds) instead of a map: the per-round churn of
	// map allocation dominated the old allocation profile.
	fSeen     []message.Assembled
	fSeenMask uint64

	// solved marks a head whose full-mask cluster solve already ran in the
	// announce-phase batch barrier; solvedSums (arena-backed) carries the
	// result the announce event reads instead of re-solving.
	solved     bool
	solvedSums []field.Element

	// Degraded subset recovery (the resilience path). subMask is the head's
	// announced common participant subset M (0 = no degradation this round);
	// the sub* fields hold the fresh degree-|M|-1 exchange restricted to M.
	subMask     uint64
	subShares   [][]field.Element // by roster index: received sub-shares
	subRecvMask uint64
	subSent     *message.Assembled        // the sub-report this node committed
	fSub        map[int]message.Assembled // head: sub-reports by roster index
	effMask     uint64                    // head: participant set actually solved

	plainSums []field.Element // heads under UndersizedPlain: component sums
	plainCnt  uint32

	children   []message.ChildEntry // heads: collected child announces
	myAnnounce *message.Announce    // heads: what we sent (child-side witness state)
	sentTo     topo.NodeID          // heads: direct head we announced to (-1 = relayed/BS)

	alarmed map[string]bool // forwarded-alarm dedup, allocated on first alarm

	// Head-failover state (failover.go). deputy is the roster-designated
	// fallback head every member computes locally; headSilent survives the
	// round boundary so the next round's repair phase can promote the deputy
	// or re-home orphans.
	deputy          topo.NodeID           // roster's deputy head (-1 = none designated)
	headAnnounced   bool                  // overheard our head's own announce this round
	headContributed bool                  // that announce carried a nonzero count
	headSilent      bool                  // watchdog expired with no announce from the head
	takeoverBy      topo.NodeID           // deputy whose takeover this member accepted (-1 = none)
	deputyClaimed   bool                  // the deputy claimed a takeover of OUR head this round
	tookOver        bool                  // deputies: stood in for the silent head this round
	repairJoiners   []message.RosterEntry // heads: orphans adopted during repair
}

// Protocol is one instance of the cluster-based protocol over an Env.
type Protocol struct {
	env   *wsn.Env
	cfg   Config
	nodes []nodeState
	round uint16

	// Base-station bookkeeping. bsSums holds one total per component.
	bsSums       []field.Element
	bsCount      uint32
	bsAlarms     map[string]message.Alarm
	alarmsRaised int

	// Resilience accounting for the last round: clusters recovered over a
	// strict participant subset vs clusters that contributed nothing.
	degradedClusters int
	failedClusters   int

	// Head-failover accounting for the last round.
	takeovers       int  // deputy takeover announces transmitted
	promotions      int  // deputies promoted to permanent head at round start
	orphansRejoined int  // members re-adopted into neighbouring clusters
	inRepair        bool // the cross-round repair window is open (Join semantics)

	startBytes int
	startMsgs  int
	startApp   int

	// comps, when non-nil, holds the active query's additive components;
	// the round then aggregates the whole component vector at once
	// (see query.go). Nil means one component: the raw reading.
	comps []func(int64) int64

	// Round-scoped scratch reused across event-time solves (degraded and
	// takeover paths). Safe because the engine is single-threaded and the
	// buffer is consumed within one event.
	scratchRows [][]field.Element

	// par is the resolved worker-pool width (Config.Parallelism, with 0
	// mapped to GOMAXPROCS at construction).
	par int

	// algebras caches one shares.Algebra per canonical cluster size m.
	// Heads re-seed every roster they publish with position seeds {1..m},
	// so all clusters of equal size share one algebra — one weights table
	// per m, which is what makes the announce-phase batch solve possible.
	algebras map[int]*shares.Algebra

	// Share-exchange barrier state: one sharePrep per participant, plus one
	// private scratch per worker. All backing arrays are reused per round.
	sharePreps  []sharePrep
	prepScratch []shareScratch

	// Announce-phase batch-solve state: the heads picked up by the barrier,
	// their grouping by algebra, and the arena backing the packed
	// right-hand sides and solved sums.
	solveHeads  []topo.NodeID
	solveGroups []solveGroup
	solveArena  []field.Element
}

// fSeenAt reads the assembled report at roster index i, mirroring the old
// map lookup's two-value form.
func (st *nodeState) fSeenAt(i int) (message.Assembled, bool) {
	if i < 0 || i >= len(st.fSeen) || st.fSeenMask&(uint64(1)<<uint(i)) == 0 {
		return message.Assembled{}, false
	}
	return st.fSeen[i], true
}

// setFSeen records an assembled report at roster index i.
func (st *nodeState) setFSeen(i int, a message.Assembled) {
	st.fSeen[i] = a
	st.fSeenMask |= uint64(1) << uint(i)
}

// growElems returns s resized to n elements, reusing its backing array when
// capacity allows.
func growElems(s []field.Element, n int) []field.Element {
	if cap(s) < n {
		return make([]field.Element, n)
	}
	return s[:n]
}

// growRows returns s resized to n nil'd rows, reusing the backing array:
// stale rows from a previous round must never read as received shares.
func growRows(s [][]field.Element, n int) [][]field.Element {
	if cap(s) < n {
		return make([][]field.Element, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// growAssembled returns s resized to n slots, reusing the backing array.
// Slots are gated by fSeenMask, so stale values need no clearing.
func growAssembled(s []message.Assembled, n int) []message.Assembled {
	if cap(s) < n {
		return make([]message.Assembled, n)
	}
	return s[:n]
}

// runWorkers fans fn out over n items on the protocol's worker pool using an
// atomic work-stealing counter. fn(w, i) receives the worker index w (for
// per-worker scratch) and the item index i, and must write only to item i's
// output slot and worker w's scratch — which is what makes the results
// independent of scheduling and therefore bit-identical to the serial path.
// With Parallelism 1 (or a single item) it degenerates to an inline loop.
func (p *Protocol) runWorkers(n int, fn func(w, i int)) {
	workers := p.par
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// nComponents returns the active component-vector width.
func (p *Protocol) nComponents() int {
	if len(p.comps) == 0 {
		return 1
	}
	return len(p.comps)
}

// New wires a protocol instance onto the environment's MAC.
func New(env *wsn.Env, cfg Config) (*Protocol, error) {
	if cfg.Pc <= 0 || cfg.Pc > 1 {
		return nil, fmt.Errorf("core: Pc %g out of (0, 1]", cfg.Pc)
	}
	if cfg.JoinWait <= 0 || cfg.RosterAt <= cfg.JoinWait || cfg.SharesAt <= cfg.RosterAt ||
		cfg.AssembleAt <= cfg.SharesAt || cfg.AggAt <= cfg.AssembleAt {
		return nil, fmt.Errorf("core: phase times must increase: %+v", cfg)
	}
	// The in-phase schedule carves each window into up to 32 jitter slots,
	// so degenerate sub-nanosecond windows must be rejected here rather than
	// surface as a zero-range jitter draw mid-round.
	if cfg.SharesAt-cfg.RosterAt < minPhaseWindow ||
		cfg.AssembleAt-cfg.SharesAt < minPhaseWindow ||
		cfg.AggAt-cfg.AssembleAt < minPhaseWindow {
		return nil, fmt.Errorf("core: phase windows below %v: %+v", minPhaseWindow, cfg)
	}
	if cfg.EpochSlot <= 0 || cfg.MaxHops < 1 {
		return nil, fmt.Errorf("core: invalid schedule %+v", cfg)
	}
	if cfg.Undersized != UndersizedDrop && cfg.Undersized != UndersizedPlain {
		return nil, fmt.Errorf("core: invalid undersized policy %d", cfg.Undersized)
	}
	if cfg.CrashRate < 0 || cfg.CrashRate >= 1 {
		return nil, fmt.Errorf("core: crash rate %g out of [0, 1)", cfg.CrashRate)
	}
	if cfg.HeadCrashRate < 0 || cfg.HeadCrashRate >= 1 {
		return nil, fmt.Errorf("core: head crash rate %g out of [0, 1)", cfg.HeadCrashRate)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: parallelism %d must be >= 1 (or 0 for GOMAXPROCS)", cfg.Parallelism)
	}
	par := cfg.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// Contention-adaptive schedule: the share and assemble phases carry
	// O(degree) unicasts per collision domain, so their windows stretch
	// with density beyond the reference degree the defaults were sized for.
	if scale := env.Net.AverageDegree() / referenceDegree; scale > 1 {
		sharesWin := time.Duration(float64(cfg.AssembleAt-cfg.SharesAt) * scale)
		asmWin := time.Duration(float64(cfg.AggAt-cfg.AssembleAt) * scale)
		cfg.AssembleAt = cfg.SharesAt + sharesWin
		cfg.AggAt = cfg.AssembleAt + asmWin
	}
	return &Protocol{env: env, cfg: cfg, par: par}, nil
}

// referenceDegree is the deployment density the default schedule is sized
// for (N=400 on the papers' 400 m × 400 m, r=50 m field).
const referenceDegree = 18.0

// minPhaseWindow is the smallest usable phase window: wide enough that the
// finest jitter slice (window/32) stays positive and the repoll/degrade
// checkpoints remain distinct instants.
const minPhaseWindow = time.Millisecond

// jitter draws a uniform delay in [0, d), degenerating to 0 for empty
// windows instead of panicking like rand.Int63n would.
func (p *Protocol) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(p.env.Rng.Int63n(int64(d)))
}

// Run executes one query round and returns the base station's view.
func (p *Protocol) Run(round uint16) (metrics.RoundResult, error) {
	p.round = round
	n := p.env.Net.Size()
	// The node array and every per-node buffer survive across rounds: the
	// reset below zeroes the state in place while retaining the backing
	// arrays (heardCH, joiners, children, fSeen, recvShares, alarm dedup),
	// so steady-state rounds allocate near-zero here.
	if len(p.nodes) != n {
		p.nodes = make([]nodeState, n)
	}
	for i := range p.nodes {
		st := &p.nodes[i]
		alarmed := st.alarmed
		if alarmed != nil {
			clear(alarmed)
		}
		*st = nodeState{
			heardCH:       st.heardCH[:0],
			joiners:       st.joiners[:0],
			children:      st.children[:0],
			repairJoiners: st.repairJoiners[:0],
			fSeen:         st.fSeen[:0],
			recvShares:    st.recvShares[:0],
			alarmed:       alarmed,
			helloParent:   -1,
			head:          -1,
			myIdx:         -1,
			sentTo:        -1,
			deputy:        -1,
			takeoverBy:    -1,
		}
	}
	p.bsSums = growElems(p.bsSums, p.nComponents())
	for k := range p.bsSums {
		p.bsSums[k] = 0
	}
	p.bsCount = 0
	if p.bsAlarms == nil {
		p.bsAlarms = make(map[string]message.Alarm)
	} else {
		clear(p.bsAlarms)
	}
	p.alarmsRaised = 0
	p.degradedClusters = 0
	p.failedClusters = 0
	p.takeovers = 0
	p.promotions = 0
	p.orphansRejoined = 0
	p.startBytes = p.env.Rec.TotalTxBytes()
	p.startMsgs = p.env.Rec.TotalTxMessages()
	p.startApp = p.env.Rec.AppMessages()

	for i := 0; i < n; i++ {
		id := topo.NodeID(i)
		p.env.MAC.SetReceiver(id, p.receive)
	}

	// The base station roots the flood and the head tree. It is not a
	// cluster head for members; it only accepts announces.
	bs := &p.nodes[topo.BaseStationID]
	bs.role = roleHead
	bs.hops = 0
	p.phaseMark(trace.PhaseFormation, "round %d: hello flood + Pc election", round)
	p.env.Eng.After(0, func() { p.sendHello(topo.BaseStationID, helloBase, 0) })
	p.scheduleCrashes()
	// Targeted head crashes wait until heads exist: roles are only known
	// once formation has run, so the draw happens at the shares phase and
	// the fail-stops land before the announce phase — a crashed head is a
	// silent head, which is exactly what the failover watchdog detects.
	if p.cfg.HeadCrashRate > 0 {
		p.env.Eng.After(p.cfg.SharesAt, func() { p.crashHeads(p.cfg.AggAt - p.cfg.SharesAt) })
	}
	p.env.Eng.After(p.cfg.RosterAt, func() { p.broadcastRosters() })
	p.env.Eng.After(p.cfg.SharesAt, func() { p.scheduleShareExchange() })
	p.env.Eng.After(p.cfg.AssembleAt, func() { p.scheduleAssembledBroadcasts() })
	p.env.Eng.After(p.cfg.AggAt, func() { p.scheduleAnnounces() })

	if err := p.env.Eng.Run(0); err != nil {
		return metrics.RoundResult{}, fmt.Errorf("core: %w", err)
	}
	return p.result(), nil
}

func (p *Protocol) result() metrics.RoundResult {
	n := p.env.Net.Size()
	covered := 0
	for i := 1; i < n; i++ {
		st := &p.nodes[i]
		if st.myIdx >= 0 && len(st.roster.Entries) >= shares.MinClusterSize {
			covered++
		} else if st.myIdx >= 0 && p.cfg.Undersized == UndersizedPlain {
			covered++
		}
	}
	reported := p.bsSums[0].Int()
	cnt := int64(p.bsCount)
	accepted := len(p.bsAlarms) == 0 && cnt <= p.env.TrueCount()
	return metrics.RoundResult{
		Protocol:         "icpda",
		TrueSum:          p.env.TrueSum(),
		TrueCount:        p.env.TrueCount(),
		ReportedSum:      reported,
		ReportedCnt:      cnt,
		Participants:     int(cnt),
		Covered:          covered,
		Accepted:         accepted,
		Alarms:           len(p.bsAlarms),
		DegradedClusters: p.degradedClusters,
		FailedClusters:   p.failedClusters,
		Takeovers:        p.takeovers,
		Promotions:       p.promotions,
		OrphansRejoined:  p.orphansRejoined,
		TxBytes:          p.env.Rec.TotalTxBytes() - p.startBytes,
		TxMessages:       p.env.Rec.TotalTxMessages() - p.startMsgs,
		AppMessages:      p.env.Rec.AppMessages() - p.startApp,
	}
}

// scheduleCrashes fail-stops a CrashRate fraction of sensor nodes at
// uniformly random instants across the round's protocol phases, plus any
// deterministically scheduled CrashAt entries.
func (p *Protocol) scheduleCrashes() {
	if len(p.cfg.CrashAt) > 0 {
		ids := make([]topo.NodeID, 0, len(p.cfg.CrashAt))
		for id := range p.cfg.CrashAt {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			p.crashAt(id, p.cfg.CrashAt[id])
		}
	}
	if p.cfg.CrashRate <= 0 {
		return
	}
	horizon := p.cfg.AggAt + time.Duration(p.cfg.MaxHops)*p.cfg.EpochSlot
	for i := 1; i < p.env.Net.Size(); i++ {
		if p.env.Rng.Float64() >= p.cfg.CrashRate {
			continue
		}
		p.crashAt(topo.NodeID(i), p.jitter(horizon))
	}
}

// crashAt schedules one fail-stop relative to the current engine time.
func (p *Protocol) crashAt(id topo.NodeID, at time.Duration) {
	p.env.Eng.After(at, func() {
		if p.env.Sink != nil {
			cluster := trace.NoCluster
			if h := p.nodes[id].head; h >= 0 {
				cluster = h
			}
			p.emit(id, cluster, "", trace.TypeCrash, "fail-stop", "node fail-stopped")
		}
		p.env.MAC.Disable(id)
	})
}

// crashHeads fail-stops each live cluster head with probability
// HeadCrashRate at a uniform instant within the next window (called at the
// moment the window opens, so a crashed head goes silent before it would
// have announced).
func (p *Protocol) crashHeads(window time.Duration) {
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		if p.nodes[i].role != roleHead || p.env.MAC.Disabled(id) {
			continue
		}
		if p.env.Rng.Float64() >= p.cfg.HeadCrashRate {
			continue
		}
		p.crashAt(id, p.jitter(window))
	}
}

// Alarms exposes the base station's alarm set (suspect IDs) for tests and
// the localization routine.
func (p *Protocol) Alarms() []message.Alarm {
	out := make([]message.Alarm, 0, len(p.bsAlarms))
	for _, a := range p.bsAlarms {
		out = append(out, a)
	}
	return out
}
