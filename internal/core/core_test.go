package core

import (
	"testing"

	"repro/internal/message"
	"repro/internal/shares"
	"repro/internal/topo"
	"repro/internal/wsn"
)

func run(t *testing.T, nodes int, seed int64, ideal bool, mut func(*Config)) (*wsn.Env, *Protocol) {
	t.Helper()
	wcfg := wsn.DefaultConfig(nodes, seed)
	wcfg.Radio.Ideal = ideal
	env, err := wsn.NewEnv(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, p
}

func TestNewValidation(t *testing.T) {
	env, _ := run(t, 50, 1, true, nil)
	muts := []func(*Config){
		func(c *Config) { c.Pc = 0 },
		func(c *Config) { c.Pc = 1.5 },
		func(c *Config) { c.JoinWait = 0 },
		func(c *Config) { c.RosterAt = c.JoinWait },
		func(c *Config) { c.SharesAt = c.RosterAt },
		func(c *Config) { c.AssembleAt = c.SharesAt },
		func(c *Config) { c.AggAt = c.AssembleAt },
		func(c *Config) { c.EpochSlot = 0 },
		func(c *Config) { c.MaxHops = 0 },
		func(c *Config) { c.Undersized = 0 },
		// Phase windows too narrow for the in-phase jitter schedule.
		func(c *Config) { c.AssembleAt = c.SharesAt + minPhaseWindow/2 },
		func(c *Config) { c.AggAt = c.AssembleAt + minPhaseWindow/2 },
		func(c *Config) { c.SharesAt = c.RosterAt + minPhaseWindow/2 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(env, cfg); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
}

func TestIdealDenseAccurateAndAccepted(t *testing.T) {
	env, p := run(t, 500, 3, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("clean round rejected: %d alarms", res.Alarms)
	}
	if res.Alarms != 0 {
		t.Errorf("alarms = %d on a clean ideal round", res.Alarms)
	}
	// Clusters that formed with >= 3 members contribute exactly; accuracy
	// reflects only the undersized-drop and uncovered losses.
	if acc := res.Accuracy(); acc < 0.6 || acc > 1.0 {
		t.Errorf("accuracy = %.3f outside sane band", acc)
	}
	if res.CoverageRate() == 0 {
		t.Error("no coverage at all")
	}
	t.Logf("coverage=%.3f participation=%.3f accuracy=%.3f",
		res.CoverageRate(), res.ParticipationRate(), res.Accuracy())
}

func TestParticipantsSumExactOnIdealChannel(t *testing.T) {
	// On an ideal channel, the reported sum must equal exactly the sum of
	// readings of nodes in viable clusters that completed the exchange —
	// i.e. ReportedCnt nodes contributed and no value was distorted.
	env, p := run(t, 400, 5, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute ground truth from protocol state: sum over viable clusters
	// whose announce reached the BS. Identify via per-node membership.
	var wantSum int64
	var wantCnt int64
	for i := 1; i < env.Net.Size(); i++ {
		st := &p.nodes[i]
		if !viableCluster(st) {
			continue
		}
		// Viable member: counted iff its head's announce chain reached BS.
		// On an ideal channel every announce reaches its parent, so every
		// viable cluster with a rooted head contributes.
		head := st.head
		if head < 0 {
			continue
		}
		if p.rootedAtBS(head) {
			wantSum += env.Readings[i]
			wantCnt++
		}
	}
	if res.ReportedSum != wantSum {
		t.Errorf("sum = %d, want %d", res.ReportedSum, wantSum)
	}
	if res.ReportedCnt != wantCnt {
		t.Errorf("count = %d, want %d", res.ReportedCnt, wantCnt)
	}
}

func TestLossyDenseStillAccepted(t *testing.T) {
	env, p := run(t, 500, 7, false, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("clean lossy round rejected with %d alarms", res.Alarms)
	}
	if acc := res.Accuracy(); acc < 0.5 {
		t.Errorf("accuracy = %.3f collapsed under losses", acc)
	}
	t.Logf("lossy: acc=%.3f part=%.3f alarms=%d", res.Accuracy(), res.ParticipationRate(), res.Alarms)
}

func TestPollutionOwnSumDetected(t *testing.T) {
	env, p := run(t, 500, 9, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	// Dry run to find a head with a viable cluster.
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	var polluter topo.NodeID = -1
	for _, h := range p.Heads() {
		if viableCluster(&p.nodes[h]) && p.rootedAtBS(h) {
			polluter = h
			break
		}
	}
	if polluter < 0 {
		t.Fatal("no viable head found")
	}
	_, p2 := run(t, 500, 9, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 10000
		c.Target = PolluteOwnSum
	})
	res, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("own-sum pollution went undetected")
	}
	if res.Alarms == 0 {
		t.Error("no alarms reached the base station")
	}
	// The alarms should indict the actual polluter.
	found := false
	for _, a := range p2.Alarms() {
		if a.Suspect == polluter {
			found = true
		}
	}
	if !found {
		t.Errorf("alarms %v do not name polluter %d", p2.Alarms(), polluter)
	}
}

func TestPollutionChildEntryDetected(t *testing.T) {
	env, p := run(t, 500, 11, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	// Find a head with a direct child (the child-echo witness requires the
	// child to have announced straight to the attacker).
	polluter := p.PickAttacker(true)
	if polluter < 0 {
		t.Skip("no head with direct children in this topology")
	}
	_, p2 := run(t, 500, 11, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 7777
		c.Target = PolluteChild
	})
	res, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("child-entry pollution went undetected")
	}
}

func TestUndersizedPlainRaisesParticipation(t *testing.T) {
	// With merging disabled, undersized clusters survive to the shares
	// phase; the plain policy then recovers their readings.
	_, pDrop := run(t, 400, 13, true, func(c *Config) { c.NoMerge = true })
	rDrop, err := pDrop.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, pPlain := run(t, 400, 13, true, func(c *Config) {
		c.NoMerge = true
		c.Undersized = UndersizedPlain
	})
	rPlain, err := pPlain.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if rPlain.Participants <= rDrop.Participants {
		t.Errorf("plain policy participants %d should exceed drop policy %d",
			rPlain.Participants, rDrop.Participants)
	}
}

func TestMergeRepairImprovesParticipation(t *testing.T) {
	_, pNoMerge := run(t, 400, 29, true, func(c *Config) { c.NoMerge = true })
	rNo, err := pNoMerge.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, pMerge := run(t, 400, 29, true, nil)
	rYes, err := pMerge.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if rYes.Participants <= rNo.Participants {
		t.Errorf("merge repair participants %d should exceed no-merge %d",
			rYes.Participants, rNo.Participants)
	}
}

func TestClusterSizesRespectCap(t *testing.T) {
	_, p := run(t, 600, 15, true, func(c *Config) { c.Pc = 0.05 })
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Heads() {
		if m := len(p.nodes[h].roster.Entries); m > shares.MinClusterSize && m > message.MaxClusterSize {
			t.Errorf("head %d has %d members, cap is %d", h, m, message.MaxClusterSize)
		}
	}
}

func TestDeterministic(t *testing.T) {
	_, p1 := run(t, 300, 17, false, nil)
	r1, err := p1.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, p2 := run(t, 300, 17, false, nil)
	r2, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReportedSum != r2.ReportedSum || r1.TxBytes != r2.TxBytes || r1.Alarms != r2.Alarms {
		t.Errorf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

// rootedAtBS walks the CH-parent chain to check connectivity to the BS.
func (p *Protocol) rootedAtBS(head topo.NodeID) bool {
	seen := map[topo.NodeID]bool{}
	for cur := head; cur >= 0; cur = p.nodes[cur].helloParent {
		if cur == topo.BaseStationID {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
	}
	return false
}

// TestPropertyNoDistortionOnIdealChannel is the protocol's end-to-end
// integrity invariant: whatever the topology, on an error-free channel the
// base station's reported sum is EXACTLY the sum of readings of the nodes
// it counted — the share algebra, relaying, vector announces, and tree
// absorption introduce zero distortion.
func TestPropertyNoDistortionOnIdealChannel(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		env, p := run(t, 250, seed, true, nil)
		res, err := p.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the exact participant set from protocol state and
		// compare sums.
		var want int64
		var cnt int64
		for i := 1; i < env.Net.Size(); i++ {
			st := &p.nodes[i]
			if !viableCluster(st) || st.head < 0 {
				continue
			}
			_, _, effMask, ok := p.solveCluster(&p.nodes[st.head])
			if !ok || effMask&(uint64(1)<<uint(st.myIdx)) == 0 {
				continue
			}
			if !p.rootedAtBS(st.head) {
				continue
			}
			want += env.Readings[i]
			cnt++
		}
		if res.ReportedSum != want || res.ReportedCnt != cnt {
			t.Fatalf("seed %d: reported %d/%d, reconstructed %d/%d",
				seed, res.ReportedSum, res.ReportedCnt, want, cnt)
		}
		if !res.Accepted || res.Alarms != 0 {
			t.Fatalf("seed %d: clean round rejected", seed)
		}
	}
}

// TestBigClusterRoundRegression pins the uint64 mask widening: a cluster
// with more than 16 members (beyond the old uint16 mask) must exchange,
// assemble, solve, and witness exactly like a small one. Seed 3 at Pc=0.05
// deterministically yields a 31-member cluster on a connected deployment.
func TestBigClusterRoundRegression(t *testing.T) {
	env, p := run(t, 600, 3, true, func(c *Config) { c.Pc = 0.05 })
	if !env.Net.Connected() {
		t.Fatal("expected connected deployment at this seed")
	}
	r, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	var bigHead topo.NodeID = -1
	maxM := 0
	for _, h := range p.Heads() {
		if m := len(p.nodes[h].roster.Entries); m > maxM {
			maxM, bigHead = m, h
		}
	}
	if maxM <= 16 {
		t.Fatalf("largest cluster has %d members; the regression needs >16", maxM)
	}
	if !r.Accepted || r.Alarms != 0 {
		t.Errorf("big-cluster round: accepted=%v alarms=%d", r.Accepted, r.Alarms)
	}
	if part := r.ParticipationRate(); part < 0.95 {
		t.Errorf("participation %.3f; big clusters should not lose members", part)
	}
	if st := &p.nodes[bigHead]; st.effMask != message.FullMask(maxM) {
		t.Errorf("big cluster solved mask %#x, want full %#x", st.effMask, message.FullMask(maxM))
	}
}

// TestDegradedRecoveryEndToEnd drives the full degraded path through a real
// lossy round: 30% loss on assembled broadcasts (ARQ does not protect
// broadcasts) forces heads into repoll and subset recovery. Degraded clusters
// must appear, the round must stay accepted with zero alarms, and the same
// deployment with recovery disabled must lose more participants.
func TestDegradedRecoveryEndToEnd(t *testing.T) {
	const seed = 21
	build := func(noDegrade bool) (*wsn.Env, *Protocol) {
		t.Helper()
		wcfg := wsn.DefaultConfig(400, seed)
		wcfg.Radio.LossByKind = map[string]float64{"assembled": 0.3}
		env, err := wsn.NewEnv(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.NoDegrade = noDegrade
		p, err := New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return env, p
	}
	env, p := build(false)
	if !env.Net.Connected() {
		t.Fatal("expected connected deployment at this seed")
	}
	r, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.DegradedClusters == 0 {
		t.Error("30% assembled loss produced no degraded clusters")
	}
	if !r.Accepted || r.Alarms != 0 {
		t.Errorf("honest degraded round: accepted=%v alarms=%d", r.Accepted, r.Alarms)
	}
	_, p2 := build(true)
	r2, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Accepted {
		t.Errorf("honest no-degrade round rejected with %d alarms", r2.Alarms)
	}
	if r.ParticipationRate() <= r2.ParticipationRate() {
		t.Errorf("degraded recovery did not help: %.3f (on) <= %.3f (off)",
			r.ParticipationRate(), r2.ParticipationRate())
	}
}
