package core

import (
	"reflect"
	"testing"

	"repro/internal/field"
	"repro/internal/topo"
	"repro/internal/wsn"
)

// roundSnapshot captures everything a round computed that the parallelism
// knob could conceivably perturb: the base-station answer, every node's
// cluster view, and every head's solved sum and effective mask.
type roundSnapshot struct {
	sums    []field.Element
	count   uint32
	alarms  int
	roles   []int
	heads   []topo.NodeID
	masks   []uint64
	sentTo  []topo.NodeID
	deputy  []topo.NodeID
	txBytes int
	txMsgs  int
}

func snapshot(p *Protocol) roundSnapshot {
	s := roundSnapshot{
		sums:    append([]field.Element(nil), p.bsSums...),
		count:   p.bsCount,
		alarms:  p.alarmsRaised,
		txBytes: p.env.Rec.TotalTxBytes(),
		txMsgs:  p.env.Rec.TotalTxMessages(),
	}
	for i := range p.nodes {
		st := &p.nodes[i]
		s.roles = append(s.roles, st.role)
		s.heads = append(s.heads, st.head)
		s.masks = append(s.masks, st.effMask)
		s.sentTo = append(s.sentTo, st.sentTo)
		s.deputy = append(s.deputy, st.deputy)
	}
	return s
}

// parRounds builds a fresh deployment at the given seed, runs one full round
// plus two retained rounds at the given parallelism, and snapshots each.
func parRounds(t *testing.T, nodes int, seed int64, par int, mut func(*Config)) []roundSnapshot {
	t.Helper()
	wcfg := wsn.DefaultConfig(nodes, seed)
	wcfg.Radio.Ideal = seed%2 == 0 // alternate ideal and lossy radio
	env, err := wsn.NewEnv(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Parallelism = par
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []roundSnapshot
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	out = append(out, snapshot(p))
	for r := uint16(2); r <= 3; r++ {
		if _, err := p.RunRetaining(r); err != nil {
			t.Fatal(err)
		}
		out = append(out, snapshot(p))
	}
	return out
}

// TestParallelBitIdenticalToSerial is the determinism property test for the
// scale-out round engine: for every parallelism width, the protocol must
// produce byte-for-byte the results of the serial run — same answers, same
// cluster structure, same traffic — across formation, retained rounds,
// lossy radio, and head-crash failover. The RNG is consumed only in the
// serial passes of each barrier, so worker count must not be observable.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		seed  int64
		mut   func(*Config)
	}{
		{"dense-ideal", 400, 2, nil},
		{"lossy", 300, 3, nil},
		{"big-clusters", 500, 4, func(c *Config) { c.Pc = 0.05 }},
		{"head-crash", 350, 5, func(c *Config) { c.HeadCrashRate = 0.15 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := parRounds(t, tc.nodes, tc.seed, 1, tc.mut)
			for _, par := range []int{2, 4, 8} {
				got := parRounds(t, tc.nodes, tc.seed, par, tc.mut)
				for r := range serial {
					if !reflect.DeepEqual(serial[r], got[r]) {
						t.Fatalf("par=%d round %d diverged from serial:\nserial: %+v\npar:    %+v",
							par, r+1, serial[r], got[r])
					}
				}
			}
		})
	}
}

// TestParallelismValidation pins the config contract: 0 means GOMAXPROCS,
// positive widths are taken as-is, negatives are rejected at construction.
func TestParallelismValidation(t *testing.T) {
	env, _ := run(t, 50, 1, true, nil)
	for _, par := range []int{-1, -8} {
		cfg := DefaultConfig()
		cfg.Parallelism = par
		if _, err := New(env, cfg); err == nil {
			t.Errorf("Parallelism=%d should be rejected", par)
		}
	}
	for _, par := range []int{0, 1, 3} {
		cfg := DefaultConfig()
		cfg.Parallelism = par
		p, err := New(env, cfg)
		if err != nil {
			t.Fatalf("Parallelism=%d rejected: %v", par, err)
		}
		if par > 0 && p.par != par {
			t.Errorf("Parallelism=%d resolved to %d", par, p.par)
		}
		if par == 0 && p.par < 1 {
			t.Errorf("Parallelism=0 resolved to %d, want >=1", p.par)
		}
	}
}

// TestSharedAlgebraPerSize pins the canonical-seed invariant the batch
// solver depends on: after a round, every viable cluster of size m holds
// the SAME *shares.Algebra pointer, and its roster seeds are {1..m}.
func TestSharedAlgebraPerSize(t *testing.T) {
	_, p := run(t, 400, 6, true, nil)
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	seen := map[int]any{}
	for _, h := range p.Heads() {
		st := &p.nodes[h]
		if st.algebra == nil {
			continue
		}
		m := len(st.roster.Entries)
		for i, e := range st.roster.Entries {
			if e.Seed != field.New(uint64(i+1)) {
				t.Fatalf("head %d entry %d seed %v, want canonical %v", h, i, e.Seed, field.New(uint64(i+1)))
			}
		}
		if prev, ok := seen[m]; ok {
			if prev != st.algebra {
				t.Errorf("two size-%d clusters hold distinct algebras", m)
			}
		} else {
			seen[m] = st.algebra
		}
	}
	if len(seen) == 0 {
		t.Fatal("no viable clusters formed")
	}
}
