package core

import (
	"math/bits"
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/shares"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Head failover (DESIGN.md §failover).
//
// The cluster head is the protocol's single point of availability failure: a
// head that fail-stops mid-round silences its whole cluster, and in
// steady-state operation (RunRetaining) the cluster would stay dead for every
// remaining epoch. Failover splits the repair across the phase structure:
//
//   - Phase I: the roster deterministically designates a deputy — the
//     highest-seed member — so every member knows the fallback before
//     aggregation starts, with zero extra wire bytes.
//   - Phase III: every member arms a head-silence watchdog one announce slot
//     after its head's slot. If the head's Announce was never overheard, the
//     member records the silence; the deputy additionally broadcasts a
//     Takeover, collects re-reported assembled columns, re-runs the subset
//     machinery (the dead head's own column is always missing, so a takeover
//     solve is by construction a degraded solve), and announces in the
//     head's stead. Witnessing survives unchanged: members verify the
//     deputy's announce exactly like a head's, and a takeover observed while
//     the head also announced (dual announce) raises an alarm — a
//     compromised deputy gains no forgery power the head didn't have.
//   - Cross-round: RunRetaining opens a repair window when silence, orphans,
//     or recovered nodes are pending — deputies of dead heads promote to
//     permanent heads (or dissolve remnants below the viability minimum so
//     orphans re-join neighbouring clusters), and crashed nodes reboot when
//     CrashRecover is set.

// deputyOf returns the roster's designated deputy head: the highest-seed
// entry other than the head. Seeds are distinct (the share algebra rejects
// duplicates), so the rule is unambiguous and every member computes the same
// deputy locally.
func deputyOf(r message.Roster) topo.NodeID {
	best := topo.NodeID(-1)
	var bestSeed field.Element
	for _, e := range r.Entries {
		if e.ID == r.Head {
			continue
		}
		if best < 0 || e.Seed > bestSeed {
			best, bestSeed = e.ID, e.Seed
		}
	}
	return best
}

// DeputyOf exposes the designated deputy of a head's cluster after a Run
// (-1 when the node is not a viable head) for tests and experiments.
func (p *Protocol) DeputyOf(head topo.NodeID) topo.NodeID {
	if p.nodes == nil || int(head) >= len(p.nodes) {
		return -1
	}
	return p.nodes[head].deputy
}

// scheduleWatchdogs arms the head-silence watchdog on every viable-cluster
// member. Called at the announce phase start, like scheduleAnnounces.
func (p *Protocol) scheduleWatchdogs() {
	if p.cfg.NoFailover {
		return
	}
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleMember || !viableCluster(st) || st.deputy < 0 {
			continue
		}
		p.env.Eng.After(p.watchdogDelay(st), func() { p.watchdogExpire(id) })
	}
}

// watchdogDelay is the member's silence deadline relative to the announce
// phase start: one epoch slot after its head's own announce slot (heads at
// hops h announce in slot MaxHops-h with at most half a slot of jitter).
func (p *Protocol) watchdogDelay(st *nodeState) time.Duration {
	headHops := st.hops
	for _, c := range st.heardCH {
		if c.id == st.head {
			headHops = c.hops
			break
		}
	}
	slot := p.cfg.MaxHops - headHops + 1
	if slot < 1 {
		slot = 1
	}
	return time.Duration(slot) * p.cfg.EpochSlot
}

// watchdogExpire records head silence and, at the deputy, starts the
// takeover. A forging deputy (TakeoverForger) claims the takeover even
// though its head announced — the dual-announce attack.
func (p *Protocol) watchdogExpire(id topo.NodeID) {
	st := &p.nodes[id]
	if st.role != roleMember || p.env.MAC.Disabled(id) {
		return
	}
	forging := p.cfg.TakeoverForger == id && st.deputy == id
	if st.headAnnounced && !forging {
		return
	}
	if !forging {
		st.headSilent = true
		if p.env.Sink != nil {
			p.emit(id, st.head, trace.PhaseFailover, trace.TypeWatchdog, "head-silent",
				"no announce overheard from head %d", st.head)
		}
	}
	if st.deputy != id {
		return
	}
	p.startTakeover(id)
}

// startTakeover broadcasts the deputy's takeover claim (twice, jittered, for
// broadcast-loss resilience — like Reassemble) and schedules the solve
// decision half an epoch slot later, once members had time to re-report.
func (p *Protocol) startTakeover(id topo.NodeID) {
	st := &p.nodes[id]
	st.tookOver = true
	st.takeoverBy = id
	p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateSilent,
		"deputy's watchdog expired with no announce from head %d", st.head)
	p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateTakeover,
		"deputy claiming takeover of head %d", st.head)
	payload := message.MarshalTakeover(message.Takeover{Head: st.head})
	send := func() {
		p.env.MAC.Send(message.Build(message.KindTakeover, id, message.BroadcastID, p.round, payload))
	}
	slot := p.cfg.EpochSlot
	p.env.Eng.After(p.jitter(slot/8), send)
	p.env.Eng.After(slot/8+p.jitter(slot/8), send)
	p.env.Eng.After(slot/2, func() { p.takeoverDecide(id) })
}

// onTakeover handles a deputy's takeover claim. A member that saw its head
// announce refuses silently — the claim is mistaken (the deputy lost the
// overhear) or forged, and the member cannot tell which; if the deputy goes
// on to announce anyway, the dual-announce witness in witnessAnnounce
// rejects the round. Members that also observed silence re-report their
// committed assembled column to the deputy so the stand-in solve has rows —
// each re-report doubles as a corroborating silence vote.
func (p *Protocol) onTakeover(at topo.NodeID, msg *message.Message) {
	t, err := message.UnmarshalTakeover(msg.Payload)
	if err != nil {
		return
	}
	st := &p.nodes[at]
	if st.head != t.Head || st.deputy != msg.From || at == msg.From {
		return // not our cluster's deputy claiming our head: ignore
	}
	// Remember that OUR deputy claimed OUR head dead. This is what scopes the
	// dual-announce alarm to this cluster: the same node can sit in two
	// rosters after churn repair, and an announce it originates for the other
	// cluster must not read as a forgery here.
	st.deputyClaimed = true
	if st.role != roleMember {
		// The (live) head itself: rebut the claim so the deputy and the
		// members that lost the first transmission get a second chance to
		// observe the announce before the stand-in solve goes out. If the
		// deputy announces regardless, witnessAnnounce indicts on sight.
		p.rebutTakeover(at)
		return
	}
	if st.headAnnounced || st.takeoverBy == msg.From {
		return // head demonstrably alive, or duplicate claim broadcast
	}
	st.takeoverBy = msg.From
	a, ok := st.fSeenAt(st.myIdx)
	if !ok {
		return // never committed a report this round: nothing to re-send
	}
	payload, err := message.MarshalAssembled(a)
	if err != nil {
		return
	}
	frame := message.Build(message.KindAssembled, at, msg.From, p.round, payload)
	p.env.Eng.After(p.jitter(p.cfg.EpochSlot/8), func() { p.env.MAC.Send(frame) })
}

// rebutTakeover is the live head's answer to a takeover claim: re-broadcast
// the round's announce locally. The first (unicast) transmission evidently
// never reached the deputy, so a local broadcast re-arms every member's
// headAnnounced evidence and makes the honest deputy stand down before it
// announces. Sent as a broadcast it is witnessed but never absorbed or
// relayed (onAnnounce forwards addressed copies only), so the contribution
// cannot double-count. A head whose announce carried count 0 stays quiet:
// the takeover solve is that cluster's recovery path, not a forgery.
func (p *Protocol) rebutTakeover(id topo.NodeID) {
	st := &p.nodes[id]
	if st.role != roleHead || p.env.MAC.Disabled(id) {
		return
	}
	if st.myAnnounce == nil || st.myAnnounce.ClusterCnt == 0 {
		return
	}
	payload, err := message.MarshalAnnounce(*st.myAnnounce)
	if err != nil {
		return
	}
	p.lifecycle(id, id, trace.PhaseFailover, trace.StateRebutted,
		"live head re-broadcasting its announce against a takeover claim")
	p.env.Eng.After(p.jitter(p.cfg.EpochSlot/16), func() {
		p.env.MAC.Send(message.Build(message.KindAnnounce, id, message.BroadcastID, p.round, payload))
	})
}

// takeoverDecide computes the solvable participant subset from the
// re-reported columns — the dead head's own column never arrives, so this is
// always the degraded path — and drives the same Reassemble machinery the
// head would have used, with the deputy standing in as collector.
func (p *Protocol) takeoverDecide(id topo.NodeID) {
	st := &p.nodes[id]
	if p.env.MAC.Disabled(id) || !viableCluster(st) {
		return
	}
	if p.cfg.ActiveClusters != nil && !p.cfg.ActiveClusters[st.head] {
		return // the localization bisection muted this cluster
	}
	if p.cfg.TakeoverForger == id {
		// The compromised deputy does not bother collecting evidence — it
		// fabricates an aggregate outright (the strongest thing a malicious
		// deputy can do with the takeover machinery).
		p.env.Eng.After((p.cfg.AggAt-p.cfg.AssembleAt)/4, func() { p.forgedTakeoverAnnounce(id) })
		return
	}
	if st.headAnnounced {
		st.headSilent = false
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateStoodDown,
			"head announced after all")
		return
	}
	m := len(st.roster.Entries)
	full := message.FullMask(m)
	common := ^uint64(0)
	var reporters uint64
	for i := 0; i < m; i++ {
		a, ok := st.fSeenAt(i)
		if !ok {
			continue
		}
		reporters |= uint64(1) << uint(i)
		common &= a.Mask
	}
	// Majority corroboration: members that saw the head announce refuse the
	// claim, so a deputy that merely lost the overhear on a lossy channel
	// collects almost no re-reports and stands down here. A genuinely dead
	// head is silent toward everyone, so every live member re-reports.
	votes := bits.OnesCount64(reporters &^ (uint64(1) << uint(st.myIdx)))
	if 2*votes < m-2 {
		// The silent majority refused to corroborate — they saw the head
		// announce, so the deputy's own missed overhear was channel loss,
		// not a death. Retract the silence verdict or the next round's
		// repair would promote this deputy over a live head.
		st.headSilent = false
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateStoodDown,
			"only %d of %d members corroborate the silence; treating the missed announce as channel loss", votes, m-2)
		return
	}
	p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateCorroborated,
		"%d of %d members corroborate the head's silence", votes, m-2)
	mask := common & reporters & full
	if p.cfg.NoDegrade || bits.OnesCount64(mask) < shares.MinClusterSize {
		p.failedClusters++
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateFailed,
			"unrecoverable after takeover: mask=%#x", mask)
		return
	}
	p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateDegraded,
		"takeover reassemble mask=%#x (%d of %d members)", mask, bits.OnesCount64(mask), m)
	st.fSub = make(map[int]message.Assembled, bits.OnesCount64(mask))
	payload := message.MarshalReassemble(message.Reassemble{Mask: mask})
	send := func() {
		p.env.MAC.Send(message.Build(message.KindReassemble, id, message.BroadcastID, p.round, payload))
	}
	slot := p.cfg.EpochSlot
	p.env.Eng.After(p.jitter(slot/8), send)
	p.env.Eng.After(slot/8+p.jitter(slot/8), send)
	if st.subMask == mask && st.subSent != nil {
		// The dead head already ran a sub-exchange over exactly this subset
		// before going silent; our committed sub-report is reusable.
		st.fSub[st.myIdx] = *st.subSent
	} else {
		st.subMask = 0 // supersede any half-finished exchange of the dead head
		p.startSubExchangeAfter(id, mask, slot/4)
	}
	p.env.Eng.After((p.cfg.AggAt-p.cfg.AssembleAt)/4, func() { p.takeoverAnnounce(id) })
}

// takeoverAnnounce solves the cluster from the deputy's collected state and
// announces in the head's stead. The announce carries the deputy as Origin
// over the original roster's algebra, so members witness it with the same
// F-row and re-solve checks as a head announce.
func (p *Protocol) takeoverAnnounce(id topo.NodeID) {
	st := &p.nodes[id]
	if p.env.MAC.Disabled(id) {
		return
	}
	if st.headAnnounced {
		// The head's rebuttal (or a relayed copy of its announce) arrived
		// between the claim and now: the head is alive and its aggregate is
		// in flight. Announcing on top of it would double-count — abort.
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateStoodDown,
			"head announced after all; aborting stand-in announce")
		return
	}
	sums, cnt, effMask, ok := p.solveCluster(st)
	if !ok {
		p.failedClusters++
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateFailed,
			"stand-in solve failed; cluster lost this round")
		return
	}
	st.effMask = effMask
	if effMask != message.FullMask(len(st.roster.Entries)) {
		p.degradedClusters++
	}
	c := p.nComponents()
	a := message.Announce{
		Origin:      id,
		ClusterSums: sums,
		ClusterCnt:  cnt,
		Components:  uint8(c),
		Mask:        effMask,
	}
	if !p.cfg.NoWitness {
		a.FMatrix = p.announceFMatrix(st, effMask)
	}
	st.myAnnounce = &a
	target := p.takeoverTarget(id)
	if target < 0 {
		return
	}
	p.takeovers++
	if p.env.Sink != nil {
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateAnnounced,
			"stand-in announce sum0=%v cnt=%d to=%d", a.ClusterSumOrZero(), cnt, target)
	}
	payload, err := message.MarshalAnnounce(a)
	if err != nil {
		return
	}
	p.env.MAC.Send(message.Build(message.KindAnnounce, id, target, p.round, payload))
}

// forgedTakeoverAnnounce is the TakeoverForger attack body: the compromised
// deputy announces a fabricated aggregate for a cluster whose head is alive
// and already announced. Every member that witnessed the head's announce
// raises the dual-announce alarm on sight of this one, so the forgery buys
// the deputy nothing but a rejected round.
func (p *Protocol) forgedTakeoverAnnounce(id topo.NodeID) {
	st := &p.nodes[id]
	if p.env.MAC.Disabled(id) {
		return
	}
	m := len(st.roster.Entries)
	c := p.nComponents()
	headIdx := -1
	for i, e := range st.roster.Entries {
		if e.ID == st.head {
			headIdx = i
			break
		}
	}
	if headIdx < 0 {
		return
	}
	mask := message.FullMask(m) &^ (uint64(1) << uint(headIdx))
	sums := make([]field.Element, c)
	sums[0] = field.FromInt(1 << 20) // arbitrary inflated total
	a := message.Announce{
		Origin:      id,
		ClusterSums: sums,
		ClusterCnt:  uint32(bits.OnesCount64(mask)),
		Components:  uint8(c),
		Mask:        mask,
		FMatrix:     make([]field.Element, bits.OnesCount64(mask)*c),
	}
	st.myAnnounce = &a
	target := p.takeoverTarget(id)
	if target < 0 {
		return
	}
	p.takeovers++
	if p.env.Sink != nil {
		p.lifecycle(id, st.head, trace.PhaseFailover, trace.StateAnnounced,
			"FORGED stand-in announce sum0=%v to=%d", sums[0], target)
	}
	payload, err := message.MarshalAnnounce(a)
	if err != nil {
		return
	}
	p.env.MAC.Send(message.Build(message.KindAnnounce, id, target, p.round, payload))
}

// takeoverTarget routes the stand-in announce toward the base station. The
// CH-tree absorption path is mostly closed this late in the announce phase,
// so the deputy prefers the base station directly, then its flood parent
// (reverse-path relay), then any other in-range head — all of which forward
// late announces onward instead of absorbing them (see onAnnounce).
func (p *Protocol) takeoverTarget(id topo.NodeID) topo.NodeID {
	st := &p.nodes[id]
	if st.bsDirect {
		return topo.BaseStationID
	}
	if st.helloParent >= 0 && st.helloParent != st.head {
		return st.helloParent
	}
	for _, c := range st.heardCH {
		if c.id != st.head && c.id != id {
			return c.id
		}
	}
	return -1
}

// pendingRepair reports whether the next retained round must open a repair
// window: head silence observed, a takeover happened, or crashed nodes are
// due a reboot.
func (p *Protocol) pendingRepair() bool {
	if p.cfg.NoFailover {
		return false
	}
	for i := 1; i < len(p.nodes); i++ {
		if p.env.MAC.Disabled(topo.NodeID(i)) {
			// A dead node's silence flags stay frozen until it is rebooted;
			// only reboot duty itself opens a window for it.
			if p.cfg.CrashRecover {
				return true
			}
			continue
		}
		if p.nodes[i].headSilent {
			return true
		}
	}
	return false
}

// scheduleRepair runs the cross-round churn repair at the start of a
// retained round, inside a dedicated window of the given length (the shares
// phase starts at its close):
//
//	t=0        crashed nodes reboot (CrashRecover); deputies of silent
//	           heads promote — or dissolve remnants below viability
//	t=w/2      members still orphaned re-join a neighbouring cluster
//	t=3w/4     heads that adopted orphans publish their extended rosters
func (p *Protocol) scheduleRepair(window time.Duration) {
	p.inRepair = true
	p.phaseMark(trace.PhaseRepair, "cross-round churn repair window (%v)", window)
	if p.cfg.CrashRecover {
		for i := 1; i < p.env.Net.Size(); i++ {
			id := topo.NodeID(i)
			if p.env.MAC.Disabled(id) {
				p.env.MAC.Enable(id)
				if p.env.Sink != nil {
					p.emit(id, trace.NoCluster, trace.PhaseRepair, trace.TypeRecover,
						"reboot", "crashed node rebooted at repair-window open")
				}
			}
		}
	}
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleMember || !st.headSilent || st.deputy != id || p.env.MAC.Disabled(id) {
			continue
		}
		p.promoteDeputy(id, window)
	}
	p.env.Eng.After(window/2, func() { p.repairOrphans() })
	p.env.Eng.After(window*3/4, func() { p.repairFinalize(window) })
	p.env.Eng.After(window, func() { p.inRepair = false })
}

// promoteDeputy makes the deputy of a dead head the cluster's permanent
// head: the promoted roster is the old one minus the dead head with the
// deputy first (the head is always entry 0). A remnant below the viability
// minimum is dissolved instead, releasing its members to re-join elsewhere.
func (p *Protocol) promoteDeputy(id topo.NodeID, window time.Duration) {
	st := &p.nodes[id]
	dead := st.head
	st.headSilent, st.tookOver = false, false
	var self message.RosterEntry
	entries := make([]message.RosterEntry, 0, len(st.roster.Entries))
	for _, e := range st.roster.Entries {
		switch e.ID {
		case dead:
		case id:
			self = e
		default:
			entries = append(entries, e)
		}
	}
	if self.ID != id {
		return // corrupt state: we are not in our own roster
	}
	entries = append([]message.RosterEntry{self}, entries...)
	if !shares.Viable(len(entries)) {
		p.lifecycle(id, dead, trace.PhaseRepair, trace.StateDissolved,
			"remnant of dead head %d too small (m=%d); dissolving", dead, len(entries))
		payload, err := message.MarshalRoster(message.Roster{Head: dead})
		if err == nil {
			p.env.Eng.After(p.jitter(window/8), func() {
				p.env.MAC.Send(message.Build(message.KindRoster, id, message.BroadcastID, p.round, payload))
			})
		}
		p.forgetHead(st, dead)
		p.clearClusterState(st)
		p.rejoin(id, dead)
		return
	}
	st.role = roleHead
	st.head = id
	p.forgetHead(st, dead)
	canonicalizeSeeds(entries)
	promoted := message.Roster{Head: id, Entries: entries}
	p.installRoster(id, promoted)
	p.promotions++
	p.lifecycle(id, id, trace.PhaseRepair, trace.StatePromoted,
		"deputy of dead head %d is now head (m=%d)", dead, len(entries))
	payload, err := message.MarshalRoster(promoted)
	if err != nil {
		return
	}
	// Beacon as a head so neighbours learn the new routing/join candidate,
	// then publish the promoted roster twice, jittered, like formation does.
	p.sendHello(id, helloHead, st.hops)
	jit := p.jitter(window / 8)
	send := func() {
		p.env.MAC.Send(message.Build(message.KindRoster, id, message.BroadcastID, p.round, payload))
	}
	p.env.Eng.After(jit, send)
	p.env.Eng.After(jit+window/4, send)
}

// repairOrphans re-homes members whose head stayed silent and whom no
// promotion reached by mid-window: forget the dead head and join a
// neighbouring cluster (the adopting head publishes its extended roster at
// the finalize step).
func (p *Protocol) repairOrphans() {
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleMember || !st.headSilent || p.env.MAC.Disabled(id) {
			continue
		}
		dead := st.head
		st.headSilent = false
		p.forgetHead(st, dead)
		p.clearClusterState(st)
		p.rejoin(id, dead)
		if st.head >= 0 && p.env.Sink != nil {
			p.lifecycle(id, st.head, trace.PhaseRepair, trace.StateOrphaned,
				"orphaned by dead head %d; joining %d", dead, st.head)
		}
	}
}

// repairFinalize publishes the extended roster of every head that adopted
// orphans during the repair window.
func (p *Protocol) repairFinalize(window time.Duration) {
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleHead || len(st.repairJoiners) == 0 || p.env.MAC.Disabled(id) {
			continue
		}
		adopted := st.repairJoiners
		st.repairJoiners = nil
		if len(st.roster.Entries) == 0 || st.roster.Entries[0].ID != id {
			continue // no self-rooted roster to extend
		}
		roster := message.Roster{Head: id}
		roster.Entries = append(roster.Entries, st.roster.Entries...)
		for _, j := range adopted {
			if len(roster.Entries) >= message.MaxClusterSize {
				break
			}
			roster.Entries = append(roster.Entries, j)
			p.orphansRejoined++
		}
		canonicalizeSeeds(roster.Entries)
		payload, err := message.MarshalRoster(roster)
		if err != nil {
			continue
		}
		p.installRoster(id, roster)
		if p.env.Sink != nil {
			p.lifecycle(id, id, trace.PhaseRepair, trace.StateAdopted,
				"adopted %d orphans (m=%d)", len(adopted), len(roster.Entries))
		}
		jit := p.jitter(window / 16)
		send := func() {
			p.env.MAC.Send(message.Build(message.KindRoster, id, message.BroadcastID, p.round, payload))
		}
		p.env.Eng.After(jit, send)
		p.env.Eng.After(jit+window/8, send)
	}
}

// forgetHead removes a dead head from a node's join/routing candidates.
func (p *Protocol) forgetHead(st *nodeState, dead topo.NodeID) {
	kept := st.heardCH[:0]
	for _, c := range st.heardCH {
		if c.id != dead {
			kept = append(kept, c)
		}
	}
	st.heardCH = kept
}

// clearClusterState detaches a node from its (dead) cluster so stale roster
// state can never drive the share phases; a fresh roster from the adopting
// head rebuilds it.
func (p *Protocol) clearClusterState(st *nodeState) {
	st.roster = message.Roster{}
	st.myIdx = -1
	st.algebra = nil
	st.recvShares = nil
	st.deputy = -1
}
