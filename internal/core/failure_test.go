package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/wsn"
)

func TestCrashRateValidation(t *testing.T) {
	env, _ := run(t, 50, 1, true, nil)
	cfg := DefaultConfig()
	cfg.CrashRate = -0.1
	if _, err := New(env, cfg); err == nil {
		t.Error("negative crash rate accepted")
	}
	cfg.CrashRate = 1.0
	if _, err := New(env, cfg); err == nil {
		t.Error("crash rate 1.0 accepted")
	}
}

func TestCrashesDegradeGracefully(t *testing.T) {
	env, p := run(t, 400, 51, true, func(c *Config) { c.CrashRate = 0.1 })
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Crashes are data loss, never integrity violations.
	if !res.Accepted {
		t.Errorf("crash-only round rejected with %d alarms", res.Alarms)
	}
	if res.Alarms != 0 {
		t.Errorf("crashes raised %d alarms", res.Alarms)
	}
	// Participation suffers but does not collapse: a crashed member takes
	// down at most its own cluster.
	if pr := res.ParticipationRate(); pr < 0.3 || pr > 0.95 {
		t.Errorf("participation = %.3f under 10%% crashes", pr)
	}
	t.Logf("crash 10%%: participation=%.3f accuracy=%.3f", res.ParticipationRate(), res.Accuracy())
}

func TestCrashesScaleWithRate(t *testing.T) {
	part := func(rate float64) float64 {
		_, p := run(t, 400, 53, true, func(c *Config) { c.CrashRate = rate })
		res, err := p.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return res.ParticipationRate()
	}
	p0, p20 := part(0), part(0.2)
	if p20 >= p0 {
		t.Errorf("participation %0.3f at 20%% crashes should be below %0.3f at 0%%", p20, p0)
	}
}

// runRounds drives one formation round plus retained rounds with fresh
// readings, returning every round's result.
func runRounds(t *testing.T, p *Protocol, env *wsn.Env, rounds int) []metrics.RoundResult {
	t.Helper()
	out := make([]metrics.RoundResult, 0, rounds)
	for r := 1; r <= rounds; r++ {
		var res metrics.RoundResult
		var err error
		if r == 1 {
			res, err = p.Run(uint16(r))
		} else {
			env.ResampleReadings()
			res, err = p.RunRetaining(uint16(r))
		}
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		out = append(out, res)
	}
	return out
}

// TestMultiRoundChurnRepair crashes heads between rounds and checks the
// cross-round repair: with failover on, later rounds recover participation
// (deputies promote, orphans re-join) and strictly dominate the failover-off
// ablation, and crash-only rounds never raise an alarm.
func TestMultiRoundChurnRepair(t *testing.T) {
	const rounds = 4
	env, p := run(t, 400, 61, true, func(c *Config) { c.HeadCrashRate = 0.2 })
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	on := runRounds(t, p, env, rounds)
	envOff, pOff := run(t, 400, 61, true, func(c *Config) {
		c.HeadCrashRate = 0.2
		c.NoFailover = true
	})
	off := runRounds(t, pOff, envOff, rounds)

	promotions, takeovers := 0, 0
	for i, res := range on {
		if !res.Accepted || res.Alarms != 0 {
			t.Errorf("failover-on round %d: accepted=%v alarms=%d (crash-only rounds must stay clean)",
				i+1, res.Accepted, res.Alarms)
		}
		promotions += res.Promotions
		takeovers += res.Takeovers
		t.Logf("round %d: on part=%d takeovers=%d promotions=%d orphans=%d | off part=%d",
			i+1, res.Participants, res.Takeovers, res.Promotions, res.OrphansRejoined,
			off[i].Participants)
	}
	for i, res := range off {
		if !res.Accepted || res.Alarms != 0 {
			t.Errorf("failover-off round %d: accepted=%v alarms=%d", i+1, res.Accepted, res.Alarms)
		}
		if res.Takeovers != 0 || res.Promotions != 0 || res.OrphansRejoined != 0 {
			t.Errorf("failover-off round %d reported failover activity", i+1)
		}
	}
	if takeovers == 0 {
		t.Error("20% head crashes over 4 rounds produced no takeover")
	}
	if promotions == 0 {
		t.Error("cross-round repair promoted no deputy")
	}
	// Dead heads accumulate without repair, so by the last round the repaired
	// network must strictly dominate the ablation.
	last := rounds - 1
	if on[last].Participants <= off[last].Participants {
		t.Errorf("final-round participation %d (failover on) should beat %d (off)",
			on[last].Participants, off[last].Participants)
	}
}

// TestCrashRecoverRejoins reboots crashed heads at the next round boundary:
// the recovered ex-head must stand down for its promoted deputy (or re-join
// after a dissolution) instead of splitting the cluster, and participation
// must climb back.
func TestCrashRecoverRejoins(t *testing.T) {
	const rounds = 4
	env, p := run(t, 400, 67, true, func(c *Config) {
		c.HeadCrashRate = 0.25
		c.CrashRecover = true
	})
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	results := runRounds(t, p, env, rounds)
	for i, res := range results {
		if !res.Accepted || res.Alarms != 0 {
			t.Errorf("round %d: accepted=%v alarms=%d", i+1, res.Accepted, res.Alarms)
		}
		t.Logf("round %d: part=%d takeovers=%d promotions=%d orphans=%d",
			i+1, res.Participants, res.Takeovers, res.Promotions, res.OrphansRejoined)
	}
	// With reboots every node is alive at each round start, so participation
	// never degenerates the way pure fail-stop does.
	first, last := results[0], results[rounds-1]
	if last.Participants < first.Participants*8/10 {
		t.Errorf("participation collapsed despite recovery: %d -> %d",
			first.Participants, last.Participants)
	}
}

func TestCollusionSuppressesWitnesses(t *testing.T) {
	env, p := run(t, 500, 9, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	polluter := p.PickAttacker(false)
	if polluter < 0 {
		t.Skip("no attacker")
	}
	// Collude the polluter's entire cluster: no member will witness.
	colluders := make(map[topo.NodeID]bool)
	for i := 1; i < env.Net.Size(); i++ {
		if p.HeadOf(topo.NodeID(i)) == polluter && topo.NodeID(i) != polluter {
			colluders[topo.NodeID(i)] = true
		}
	}
	if len(colluders) == 0 {
		t.Skip("attacker has no members")
	}
	_, p2 := run(t, 500, 9, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 10000
		c.Target = PolluteOwnSum
		c.Colluders = colluders
	})
	res, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// With every in-cluster witness colluding and no child echo involved,
	// the own-sum attack slips through — the documented degradation under
	// the paper's future-work collusion model.
	if !res.Accepted {
		t.Logf("still detected via secondary checks: alarms=%d", res.Alarms)
	} else {
		t.Logf("full-cluster collusion evades detection (expected)")
	}
	// Partial collusion keeps detection alive: leave one honest member.
	var honest topo.NodeID = -1
	for id := range colluders {
		honest = id
		break
	}
	partial := make(map[topo.NodeID]bool)
	for id := range colluders {
		if id != honest {
			partial[id] = true
		}
	}
	_, p3 := run(t, 500, 9, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 10000
		c.Target = PolluteOwnSum
		c.Colluders = partial
	})
	res3, err := p3.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Accepted {
		t.Error("one honest witness should still detect the attack")
	}
}

func TestNoWitnessAblation(t *testing.T) {
	env, p := run(t, 400, 71, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	rWith, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, pNo := run(t, 400, 71, true, func(c *Config) { c.NoWitness = true })
	rWithout, err := pNo.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Same aggregate, smaller announces.
	if rWithout.ReportedSum != rWith.ReportedSum {
		t.Errorf("ablation changed the aggregate: %d vs %d", rWithout.ReportedSum, rWith.ReportedSum)
	}
	if rWithout.TxBytes >= rWith.TxBytes {
		t.Errorf("witness-free bytes %d should be below witnessed %d", rWithout.TxBytes, rWith.TxBytes)
	}
	// And, of course, pollution sails through.
	polluter := pNo.PickAttacker(false)
	if polluter < 0 {
		t.Skip("no attacker")
	}
	_, pAtk := run(t, 400, 71, true, func(c *Config) {
		c.NoWitness = true
		c.Polluter = polluter
		c.PollutionDelta = 9999
	})
	rAtk, err := pAtk.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rAtk.Accepted {
		t.Error("NoWitness ablation should not detect anything")
	}
}
