package core

import (
	"testing"

	"repro/internal/topo"
)

func TestCrashRateValidation(t *testing.T) {
	env, _ := run(t, 50, 1, true, nil)
	cfg := DefaultConfig()
	cfg.CrashRate = -0.1
	if _, err := New(env, cfg); err == nil {
		t.Error("negative crash rate accepted")
	}
	cfg.CrashRate = 1.0
	if _, err := New(env, cfg); err == nil {
		t.Error("crash rate 1.0 accepted")
	}
}

func TestCrashesDegradeGracefully(t *testing.T) {
	env, p := run(t, 400, 51, true, func(c *Config) { c.CrashRate = 0.1 })
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Crashes are data loss, never integrity violations.
	if !res.Accepted {
		t.Errorf("crash-only round rejected with %d alarms", res.Alarms)
	}
	if res.Alarms != 0 {
		t.Errorf("crashes raised %d alarms", res.Alarms)
	}
	// Participation suffers but does not collapse: a crashed member takes
	// down at most its own cluster.
	if pr := res.ParticipationRate(); pr < 0.3 || pr > 0.95 {
		t.Errorf("participation = %.3f under 10%% crashes", pr)
	}
	t.Logf("crash 10%%: participation=%.3f accuracy=%.3f", res.ParticipationRate(), res.Accuracy())
}

func TestCrashesScaleWithRate(t *testing.T) {
	part := func(rate float64) float64 {
		_, p := run(t, 400, 53, true, func(c *Config) { c.CrashRate = rate })
		res, err := p.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return res.ParticipationRate()
	}
	p0, p20 := part(0), part(0.2)
	if p20 >= p0 {
		t.Errorf("participation %0.3f at 20%% crashes should be below %0.3f at 0%%", p20, p0)
	}
}

func TestCollusionSuppressesWitnesses(t *testing.T) {
	env, p := run(t, 500, 9, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	polluter := p.PickAttacker(false)
	if polluter < 0 {
		t.Skip("no attacker")
	}
	// Collude the polluter's entire cluster: no member will witness.
	colluders := make(map[topo.NodeID]bool)
	for i := 1; i < env.Net.Size(); i++ {
		if p.HeadOf(topo.NodeID(i)) == polluter && topo.NodeID(i) != polluter {
			colluders[topo.NodeID(i)] = true
		}
	}
	if len(colluders) == 0 {
		t.Skip("attacker has no members")
	}
	_, p2 := run(t, 500, 9, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 10000
		c.Target = PolluteOwnSum
		c.Colluders = colluders
	})
	res, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// With every in-cluster witness colluding and no child echo involved,
	// the own-sum attack slips through — the documented degradation under
	// the paper's future-work collusion model.
	if !res.Accepted {
		t.Logf("still detected via secondary checks: alarms=%d", res.Alarms)
	} else {
		t.Logf("full-cluster collusion evades detection (expected)")
	}
	// Partial collusion keeps detection alive: leave one honest member.
	var honest topo.NodeID = -1
	for id := range colluders {
		honest = id
		break
	}
	partial := make(map[topo.NodeID]bool)
	for id := range colluders {
		if id != honest {
			partial[id] = true
		}
	}
	_, p3 := run(t, 500, 9, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 10000
		c.Target = PolluteOwnSum
		c.Colluders = partial
	})
	res3, err := p3.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Accepted {
		t.Error("one honest witness should still detect the attack")
	}
}

func TestNoWitnessAblation(t *testing.T) {
	env, p := run(t, 400, 71, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	rWith, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, pNo := run(t, 400, 71, true, func(c *Config) { c.NoWitness = true })
	rWithout, err := pNo.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Same aggregate, smaller announces.
	if rWithout.ReportedSum != rWith.ReportedSum {
		t.Errorf("ablation changed the aggregate: %d vs %d", rWithout.ReportedSum, rWith.ReportedSum)
	}
	if rWithout.TxBytes >= rWith.TxBytes {
		t.Errorf("witness-free bytes %d should be below witnessed %d", rWithout.TxBytes, rWith.TxBytes)
	}
	// And, of course, pollution sails through.
	polluter := pNo.PickAttacker(false)
	if polluter < 0 {
		t.Skip("no attacker")
	}
	_, pAtk := run(t, 400, 71, true, func(c *Config) {
		c.NoWitness = true
		c.Polluter = polluter
		c.PollutionDelta = 9999
	})
	rAtk, err := pAtk.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rAtk.Accepted {
		t.Error("NoWitness ablation should not detect anything")
	}
}
