package core

import (
	"fmt"

	"repro/internal/topo"
	"repro/internal/trace"
)

// Flight-recorder emit helpers. Every helper guards on the env sink before
// formatting, so a disabled run pays one nil comparison per site; call
// sites inside per-node loops additionally hoist the check (p.env.Sink !=
// nil) to skip the variadic boxing entirely.

// emit records one typed protocol event with the current round stamped in.
func (p *Protocol) emit(node, cluster topo.NodeID, phase, typ, cause, format string, args ...any) {
	if p.env.Sink == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	p.env.Emit(trace.Event{Round: p.round, Node: node, Cluster: cluster,
		Phase: phase, Type: typ, Cause: cause, Detail: detail})
}

// lifecycle records a cluster state-machine transition. The cluster is
// identified by its head's node ID; the new state rides in Cause, so a
// trace filtered to one cluster and the lifecycle type reads as the
// explicit state machine (formed → exchanging → … → announced | failed).
func (p *Protocol) lifecycle(node, cluster topo.NodeID, phase, state, format string, args ...any) {
	p.emit(node, cluster, phase, trace.TypeLifecycle, state, format, args...)
}

// phaseMark records a protocol phase window opening (network-wide, so the
// event is unscoped: base-station node, no cluster).
func (p *Protocol) phaseMark(phase, format string, args ...any) {
	p.emit(topo.BaseStationID, trace.NoCluster, phase, trace.TypePhase, "", format, args...)
}
