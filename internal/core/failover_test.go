package core

import (
	"testing"
	"time"

	"repro/internal/topo"
)

// pickViableHead returns a viable, BS-rooted head from a finished run, with
// its deputy, or (-1, -1).
func pickViableHead(p *Protocol) (topo.NodeID, topo.NodeID) {
	h := p.PickAttacker(false)
	if h < 0 {
		return -1, -1
	}
	return h, p.DeputyOf(h)
}

func TestDeputyDeterministic(t *testing.T) {
	env, p := run(t, 400, 21, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, h := range p.Heads() {
		st := &p.nodes[h]
		if !viableCluster(st) {
			continue
		}
		d := p.DeputyOf(h)
		if d < 0 {
			t.Errorf("viable head %d has no deputy", h)
			continue
		}
		if d == h {
			t.Errorf("head %d is its own deputy", h)
		}
		// The deputy is the highest-seed roster entry other than the head,
		// and every member agrees on it.
		var bestSeed uint64
		inRoster := false
		for _, e := range st.roster.Entries {
			if e.ID == h {
				continue
			}
			if uint64(e.Seed) > bestSeed {
				bestSeed = uint64(e.Seed)
			}
			if e.ID == d {
				inRoster = true
				if p.nodes[d].deputy != d {
					t.Errorf("deputy %d of head %d does not know itself", d, h)
				}
			}
		}
		if !inRoster {
			t.Errorf("deputy %d of head %d not in roster", d, h)
		}
		if uint64(p.seedOf(st, d)) != bestSeed {
			t.Errorf("deputy %d of head %d has seed %d, want max %d",
				d, h, p.seedOf(st, d), bestSeed)
		}
		for _, e := range st.roster.Entries {
			if e.ID != h && p.nodes[e.ID].deputy != d {
				t.Errorf("member %d of head %d computed deputy %d, want %d",
					e.ID, h, p.nodes[e.ID].deputy, d)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no viable clusters")
	}
}

func (p *Protocol) seedOf(st *nodeState, id topo.NodeID) uint64 {
	for _, e := range st.roster.Entries {
		if e.ID == id {
			return uint64(e.Seed)
		}
	}
	return 0
}

func TestNoFailoverLeavesNoDeputies(t *testing.T) {
	_, p := run(t, 300, 21, true, func(c *Config) { c.NoFailover = true })
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Heads() {
		if d := p.DeputyOf(h); d >= 0 {
			t.Errorf("NoFailover head %d still has deputy %d", h, d)
		}
	}
}

// TestHeadCrashTakeover is the tentpole's in-round path: a head that
// fail-stops after the assembled phase is covered by its deputy's stand-in
// announce, the round stays accepted with zero alarms, and participation
// strictly beats the failover-off ablation.
func TestHeadCrashTakeover(t *testing.T) {
	env, scout := run(t, 400, 23, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := scout.Run(1); err != nil {
		t.Fatal(err)
	}
	victim, deputy := pickViableHead(scout)
	if victim < 0 || deputy < 0 {
		t.Skip("no viable head")
	}
	cfg := DefaultConfig()
	crashAt := cfg.AssembleAt + (cfg.AggAt-cfg.AssembleAt)*3/4
	crash := func(c *Config) {
		c.CrashAt = map[topo.NodeID]time.Duration{victim: crashAt}
	}
	_, p := run(t, 400, 23, true, crash)
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("head-crash round rejected with %d alarms", res.Alarms)
	}
	if res.Alarms != 0 {
		t.Errorf("crash-only round raised %d alarms", res.Alarms)
	}
	if res.Takeovers != 1 {
		t.Errorf("takeovers = %d, want 1", res.Takeovers)
	}
	_, pOff := run(t, 400, 23, true, func(c *Config) {
		crash(c)
		c.NoFailover = true
	})
	resOff, err := pOff.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants <= resOff.Participants {
		t.Errorf("failover-on participation %d should beat failover-off %d",
			res.Participants, resOff.Participants)
	}
	t.Logf("head %d crashed at %v: deputy %d took over, participation %d vs %d off",
		victim, crashAt, deputy, res.Participants, resOff.Participants)
}

// TestForgedTakeoverRejected is the ISSUE's acceptance attack: the deputy of
// a live, announcing head forges a takeover announce. Dual-announce
// witnessing must end the round rejected.
func TestForgedTakeoverRejected(t *testing.T) {
	env, scout := run(t, 400, 23, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := scout.Run(1); err != nil {
		t.Fatal(err)
	}
	victim, deputy := pickViableHead(scout)
	if victim < 0 || deputy < 0 {
		t.Skip("no viable head")
	}
	_, p := run(t, 400, 23, true, func(c *Config) { c.TakeoverForger = deputy })
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("forged dual-announce takeover was accepted")
	}
	if res.Alarms == 0 {
		t.Error("no witness alarmed on the dual announce")
	}
	t.Logf("forged takeover by deputy %d of live head %d: alarms=%d accepted=%v",
		deputy, victim, res.Alarms, res.Accepted)
}

// TestTakeoverOnLossyChannel guards the false-positive side: a realistic
// fading channel must not let missed overhears escalate into takeovers that
// reject the round (majority corroboration keeps mistaken deputies down).
func TestTakeoverOnLossyChannel(t *testing.T) {
	_, p := run(t, 500, 7, false, nil)
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("lossy no-crash round rejected with %d alarms", res.Alarms)
	}
	if res.Alarms != 0 {
		t.Errorf("lossy no-crash round raised %d alarms", res.Alarms)
	}
}
