package core

import (
	"math"
	"testing"

	"repro/internal/topo"
)

func TestRunRetainingBeforeRunFails(t *testing.T) {
	_, p := run(t, 50, 1, true, nil)
	if _, err := p.RunRetaining(2); err == nil {
		t.Error("RunRetaining before Run should fail")
	}
}

func TestRunRetainingKeepsClusters(t *testing.T) {
	env, p := run(t, 400, 21, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	r1, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	heads1 := p.Heads()
	r2, err := p.RunRetaining(2)
	if err != nil {
		t.Fatal(err)
	}
	heads2 := p.Heads()
	if len(heads1) != len(heads2) {
		t.Fatalf("head count changed: %d vs %d", len(heads1), len(heads2))
	}
	for i := range heads1 {
		if heads1[i] != heads2[i] {
			t.Fatalf("heads changed at %d", i)
		}
	}
	// Same clusters, fresh shares: identical participant counts on an
	// ideal channel.
	if r1.ReportedCnt != r2.ReportedCnt {
		t.Errorf("counts differ: %d vs %d", r1.ReportedCnt, r2.ReportedCnt)
	}
	if r1.ReportedSum != r2.ReportedSum {
		t.Errorf("sums differ: %d vs %d", r1.ReportedSum, r2.ReportedSum)
	}
	if !r2.Accepted {
		t.Error("clean retained round rejected")
	}
}

func TestActiveClustersRestrictContribution(t *testing.T) {
	env, p := run(t, 400, 23, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	r1, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	heads := p.Heads()
	if len(heads) < 4 {
		t.Skip("too few heads")
	}
	active := make(map[topo.NodeID]bool)
	for _, h := range heads[:len(heads)/2] {
		active[h] = true
	}
	p.cfg.ActiveClusters = active
	r2, err := p.RunRetaining(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReportedCnt >= r1.ReportedCnt {
		t.Errorf("half-active count %d should be below full count %d", r2.ReportedCnt, r1.ReportedCnt)
	}
	if r2.ReportedCnt == 0 {
		t.Error("half-active round reported nothing")
	}
}

func TestLocalizeCleanNetwork(t *testing.T) {
	env, p := run(t, 400, 25, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Localize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspect != -1 {
		t.Errorf("clean network: suspect = %d", res.Suspect)
	}
	if res.Rounds != 1 {
		t.Errorf("clean network should stop after 1 round, took %d", res.Rounds)
	}
}

func TestLocalizeFindsPolluter(t *testing.T) {
	// Dry run to pick a viable polluter head deterministically.
	env, p := run(t, 400, 27, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	var polluter topo.NodeID = -1
	for _, h := range p.Heads() {
		if viableCluster(&p.nodes[h]) && p.rootedAtBS(h) {
			polluter = h
			break
		}
	}
	if polluter < 0 {
		t.Fatal("no viable head")
	}
	_, p2 := run(t, 400, 27, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 9999
		c.Target = PolluteOwnSum
	})
	res, err := p2.Localize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspect != polluter {
		t.Errorf("localized %d, want %d", res.Suspect, polluter)
	}
	// O(log N) bound: 1 + ceil(log2(#heads)) rounds.
	bound := 1 + int(math.Ceil(math.Log2(float64(len(p2.Heads())))))
	if res.Rounds > bound+1 {
		t.Errorf("rounds = %d exceeds O(log N) bound %d", res.Rounds, bound)
	}
	t.Logf("localized %d in %d rounds (heads=%d)", res.Suspect, res.Rounds, len(p2.Heads()))
}
