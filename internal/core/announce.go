package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/shares"
	"repro/internal/topo"
	"repro/internal/trace"
)

// scheduleAnnounces arranges every head's single up-tree transmission,
// deepest flood levels first so children report before their parents, and
// arms the members' head-silence watchdogs one slot behind each head's own.
// Before any announce event fires it runs the batch-solve barrier: every
// cluster whose full report set is already in solves here, grouped by size,
// so the per-head announce events just read their precomputed sums.
func (p *Protocol) scheduleAnnounces() {
	p.phaseMark(trace.PhaseAnnounce, "CH-tree aggregation, witnessing, failover watchdogs")
	p.preSolveClusters()
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleHead || p.env.MAC.Disabled(id) {
			continue
		}
		slot := p.cfg.MaxHops - st.hops
		if slot < 0 {
			slot = 0
		}
		at := time.Duration(slot)*p.cfg.EpochSlot + p.jitter(p.cfg.EpochSlot/2)
		p.env.Eng.After(at, func() { p.announce(id) })
	}
	p.scheduleWatchdogs()
}

// solveGroup is one batch-solve unit: every pre-solvable cluster sharing an
// algebra. Canonical rosters (heads assign position seeds {1..m}) make that
// "every cluster of size m", so a round has one group — one weights table —
// per distinct cluster size.
type solveGroup struct {
	alg   *shares.Algebra
	heads []topo.NodeID
	rhs   []field.Element // m × (G·c) packed right-hand-side columns
	sums  []field.Element // G·c solved sums, c per cluster
}

// arenaTake hands out n elements from the round's solve arena. The arena
// only grows until steady state; earlier slices stay valid across growth
// (they keep the old backing), so callers hold them for the round.
func (p *Protocol) arenaTake(n int) []field.Element {
	base := len(p.solveArena)
	if cap(p.solveArena) < base+n {
		na := make([]field.Element, base, 2*(base+n))
		copy(na, p.solveArena)
		p.solveArena = na
	}
	p.solveArena = p.solveArena[:base+n]
	return p.solveArena[base : base+n : base+n]
}

// preSolveClusters is the announce-phase batch barrier. It collects every
// live, active, viable head whose report set is already complete at full
// mask — the common case by the time the announce phase opens — groups the
// clusters by algebra, and solves each group's packed right-hand sides in a
// single weights pass per group, fanned out across the worker pool.
//
// Everything else keeps the serial event-time solve: deputies (their state
// lives on the deputy node, not the head), degraded clusters (Subset()
// mutates the algebra's cache, which must stay single-threaded), and heads
// whose reports are still trickling in. Late post-barrier report deliveries
// cannot desynchronise the solved sums from the announce's F-matrix echo: a
// full-mask row can only be overwritten by a value-identical re-report
// (receive masks only grow, and full is full).
func (p *Protocol) preSolveClusters() {
	c := p.nComponents()
	heads := p.solveHeads[:0]
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleHead || p.env.MAC.Disabled(id) {
			continue
		}
		if p.cfg.ActiveClusters != nil && !p.cfg.ActiveClusters[id] {
			continue
		}
		if !viableCluster(st) {
			continue
		}
		m := len(st.roster.Entries)
		full := message.FullMask(m)
		if st.fSeenMask&full != full {
			continue
		}
		complete := true
		for j := 0; j < m; j++ {
			if a := st.fSeen[j]; a.Mask != full || len(a.Fs) != c {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		heads = append(heads, id)
	}
	p.solveHeads = heads

	// Group by algebra pointer: same algebra ⇒ same size and weights.
	// Group count is the number of distinct cluster sizes, so the linear
	// scan stays cheap.
	groups := p.solveGroups
	ng := 0
	for _, id := range heads {
		alg := p.nodes[id].algebra
		gi := -1
		for g := 0; g < ng; g++ {
			if groups[g].alg == alg {
				gi = g
				break
			}
		}
		if gi < 0 {
			if ng == len(groups) {
				groups = append(groups, solveGroup{})
			}
			gi = ng
			groups[gi].alg = alg
			groups[gi].heads = groups[gi].heads[:0]
			ng++
		}
		groups[gi].heads = append(groups[gi].heads, id)
	}
	p.solveGroups = groups
	groups = groups[:ng]

	// Pack and solve, one task per group: each task writes only its own
	// group's arena slices and its own clusters' solved state, so results
	// are independent of worker scheduling.
	p.solveArena = p.solveArena[:0]
	for g := range groups {
		m, G := groups[g].alg.Size(), len(groups[g].heads)
		groups[g].rhs = p.arenaTake(m * G * c)
		groups[g].sums = p.arenaTake(G * c)
	}
	p.runWorkers(len(groups), func(_, g int) { p.batchSolveGroup(&groups[g]) })

	p.emitRoundEngine(groups)
}

// batchSolveGroup packs the group's full-mask reports column-contiguously —
// cluster g's component j lands in column g·c+j — and recovers every
// cluster's sums in one weights pass. Field arithmetic is exact, so the
// results are bit-identical to the per-cluster event-time solve.
func (p *Protocol) batchSolveGroup(g *solveGroup) {
	c := p.nComponents()
	m := g.alg.Size()
	cols := len(g.heads) * c
	for gidx, id := range g.heads {
		st := &p.nodes[id]
		for row := 0; row < m; row++ {
			copy(g.rhs[row*cols+gidx*c:row*cols+(gidx+1)*c], st.fSeen[row].Fs)
		}
	}
	if err := g.alg.BatchSolver().SolveInto(g.sums, g.rhs, cols); err != nil {
		return // clusters stay unsolved; announce falls back to the event-time path
	}
	for gidx, id := range g.heads {
		st := &p.nodes[id]
		st.solvedSums = g.sums[gidx*c : (gidx+1)*c : (gidx+1)*c]
		st.solved = true
	}
}

// emitRoundEngine records the per-round engine telemetry: worker-pool
// width, batch-solve group layout, and deployment-grid occupancy — what
// aggtrace -summary needs to explain where round wall-clock went.
func (p *Protocol) emitRoundEngine(groups []solveGroup) {
	if p.env.Sink == nil {
		return
	}
	type mg struct{ m, g int }
	mgs := make([]mg, len(groups))
	for i := range groups {
		mgs[i] = mg{groups[i].alg.Size(), len(groups[i].heads)}
	}
	sort.Slice(mgs, func(a, b int) bool { return mgs[a].m < mgs[b].m })
	var sb strings.Builder
	for i, e := range mgs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "m=%d×%d", e.m, e.g)
	}
	cells, occ, maxo := p.env.Net.GridStats()
	p.emit(topo.BaseStationID, trace.NoCluster, trace.PhaseAnnounce, trace.TypeRound, "batch-solve",
		"par=%d presolved=%d groups=[%s] grid: %d/%d cells occupied, max %d nodes/cell",
		p.par, len(p.solveHeads), sb.String(), occ, cells, maxo)
}

// announceTarget picks where a head sends its announce: the shallowest head
// in direct radio range that sits strictly closer to the base station
// (enabling the child-echo witness), else the base station itself when in
// range, else the head's flood parent, which relays hop by hop along the
// flood tree (reverse-path forwarding).
func (p *Protocol) announceTarget(id topo.NodeID) (to topo.NodeID, directHead bool) {
	st := &p.nodes[id]
	best := topo.NodeID(-1)
	bestHops := st.hops
	for _, c := range st.heardCH {
		if c.id == id {
			continue
		}
		if c.hops < bestHops {
			best = c.id
			bestHops = c.hops
		}
	}
	if best >= 0 {
		return best, true
	}
	if st.bsDirect {
		return topo.BaseStationID, false
	}
	return st.helloParent, false
}

// clusterContribution solves the head's own cluster, honouring the
// undersized policy and the localization active-set, and returns the
// effective participant mask the sums cover (zero for plain or failed
// clusters). A nil sums vector means the cluster contributes nothing this
// round.
func (p *Protocol) clusterContribution(id topo.NodeID) ([]field.Element, uint32, uint64) {
	st := &p.nodes[id]
	if p.cfg.ActiveClusters != nil && !p.cfg.ActiveClusters[id] {
		return nil, 0, 0
	}
	if viableCluster(st) {
		if st.solved {
			// Solved in the announce-phase batch barrier: by construction a
			// complete full-mask solve, so neither resilience counter moves.
			st.effMask = message.FullMask(len(st.roster.Entries))
			return st.solvedSums, uint32(len(st.roster.Entries)), st.effMask
		}
		sums, cnt, effMask, ok := p.solveCluster(st)
		if !ok {
			p.failedClusters++
			return nil, 0, 0 // incomplete exchange: cluster fails the round
		}
		st.effMask = effMask
		if effMask != message.FullMask(len(st.roster.Entries)) {
			p.degradedClusters++
		}
		return sums, cnt, effMask
	}
	if p.cfg.Undersized == UndersizedPlain {
		// Head's own reading plus whatever members reported plainly.
		sums := make([]field.Element, p.nComponents())
		reading := p.readingVector(id)
		for k := range sums {
			sums[k] = reading[k]
			if k < len(st.plainSums) {
				sums[k] = sums[k].Add(st.plainSums[k])
			}
		}
		return sums, st.plainCnt + 1, 0
	}
	return nil, 0, 0
}

// announce transmits the head's Announce toward the base station (ARQ
// unicast; the cluster's witnesses and a direct parent head's children
// overhear it promiscuously).
func (p *Protocol) announce(id topo.NodeID) {
	st := &p.nodes[id]
	if p.env.MAC.Disabled(id) {
		return // crashed after scheduling: a silent head, not a failed solve
	}
	target, direct := p.announceTarget(id)
	if target < 0 {
		return // never reached by the flood
	}
	c := p.nComponents()
	sums, cnt, effMask := p.clusterContribution(id)
	a := message.Announce{
		Origin:      id,
		ClusterSums: sums,
		ClusterCnt:  cnt,
		Components:  uint8(c),
		Children:    append([]message.ChildEntry(nil), st.children...),
	}
	// The announce carries the effective participant set: the full roster
	// mask after a complete exchange, the strict subset M after degraded
	// recovery, zero for plain or failed clusters. Witnesses re-solve
	// against exactly this set.
	if cnt > 0 && viableCluster(st) {
		a.Mask = effMask
	}
	// Echo the solved F matrix — rows in ascending mask-bit order — so
	// members can witness the cluster sums (skipped under NoWitness).
	if cnt > 0 && viableCluster(st) && !p.cfg.NoWitness {
		a.FMatrix = p.announceFMatrix(st, effMask)
	}
	// Pollution attack: tamper with the outgoing aggregate (component 0).
	if id == p.cfg.Polluter && p.round >= p.cfg.PolluteFromRound &&
		(p.cfg.ActiveClusters == nil || p.cfg.ActiveClusters[id]) {
		delta := field.FromInt(p.cfg.PollutionDelta)
		polluteOwn := func() {
			if a.ClusterSums == nil {
				a.ClusterSums = make([]field.Element, c)
			}
			a.ClusterSums[0] = a.ClusterSums[0].Add(delta)
		}
		switch p.cfg.Target {
		case PolluteOwnSum:
			polluteOwn()
		case PolluteChild:
			if len(a.Children) > 0 && len(a.Children[0].Totals) > 0 {
				a.Children[0].Totals[0] = a.Children[0].Totals[0].Add(delta)
			} else {
				polluteOwn()
			}
		}
	}
	st.myAnnounce = &a
	if direct {
		st.sentTo = target
	}
	p.lifecycle(id, id, trace.PhaseAnnounce, trace.StateAnnounced,
		"sum0=%v cnt=%d children=%d to=%d direct=%v",
		a.ClusterSumOrZero(), a.ClusterCnt, len(a.Children), target, direct)
	payload, err := message.MarshalAnnounce(a)
	if err != nil {
		return
	}
	p.env.MAC.Send(message.Build(message.KindAnnounce, id, target, p.round, payload))
}

// announceFMatrix builds the echoed F matrix for an announce — one row per
// effective participant, ascending mask-bit order — from the full-exchange
// reports or, for a strict subset, the sub-exchange reports. Shared by the
// head's announce and the deputy's takeover announce.
func (p *Protocol) announceFMatrix(st *nodeState, effMask uint64) []field.Element {
	m := len(st.roster.Entries)
	full := message.FullMask(m)
	c := p.nComponents()
	rows := bits.OnesCount64(effMask)
	fm := make([]field.Element, 0, rows*c)
	for i := 0; i < m; i++ {
		if effMask&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		src := st.fSeen[i]
		if effMask != full {
			src = st.fSub[i]
		}
		fm = append(fm, src.Fs[:c]...)
	}
	return fm
}

// onAnnounce handles every announce reception: witnessing (overheard first
// transmissions), absorption (heads and the base station), and reverse-path
// relaying (members).
func (p *Protocol) onAnnounce(at topo.NodeID, msg *message.Message) {
	a, err := message.UnmarshalAnnounce(msg.Payload)
	if err != nil {
		return
	}
	st := &p.nodes[at]

	// Any copy of our head's announce — first transmission or relayed —
	// proves the head lived through this round (watchdog evidence), and
	// retracts an already-expired watchdog so cross-round repair does not
	// dismember a live cluster whose first transmission was merely lost.
	if st.role == roleMember && a.Origin == st.head {
		st.headAnnounced = true
		st.headSilent = false
		if a.ClusterCnt > 0 {
			st.headContributed = true
		}
	}

	// Witnessing applies to the origin's own transmission only (relays are
	// not re-witnessed; the relay path cannot aggregate or modify without
	// detection at the absorbing head's own witnesses).
	if msg.From == a.Origin && at != topo.BaseStationID && !p.cfg.NoWitness {
		p.witnessAnnounce(at, a)
	}

	if msg.To != at {
		return
	}
	// Structural sanity applies to every absorbed or relayed announce: a
	// failed cluster (count 0) must contribute nothing.
	if a.ClusterCnt == 0 && !p.cfg.NoWitness {
		for _, s := range a.ClusterSums {
			if s != 0 {
				p.raiseAlarm(at, a.Origin, s, 0, "nonzero-sums-from-failed-cluster")
				return
			}
		}
	}
	if at == topo.BaseStationID {
		total := a.Total()
		for k := 0; k < len(p.bsSums) && k < len(total); k++ {
			p.bsSums[k] = p.bsSums[k].Add(total[k])
		}
		p.bsCount += a.TotalCount()
		return
	}
	switch st.role {
	case roleHead:
		if st.myAnnounce != nil {
			// Already announced: absorbing now would silently drop the
			// contribution. Forward it along our own announce route instead
			// (hops decrease monotonically toward the base station, so
			// forwarding cannot loop). This is what delivers deputy takeover
			// announces, which by construction arrive after every head's
			// own slot.
			if target, _ := p.announceTarget(at); target >= 0 && target != msg.From {
				p.env.MAC.Send(message.Build(message.KindAnnounce, at, target, msg.Round, msg.Payload))
			}
			return
		}
		st.children = append(st.children, message.ChildEntry{
			Child:  a.Origin,
			Totals: a.Total(),
			Count:  a.TotalCount(),
		})
	case roleMember:
		if st.helloParent >= 0 {
			p.env.MAC.Send(message.Build(message.KindAnnounce, at, st.helloParent, msg.Round, msg.Payload))
		}
	}
}

// witnessAnnounce runs the two witness checks against an overheard
// first-transmission announce.
func (p *Protocol) witnessAnnounce(at topo.NodeID, a message.Announce) {
	st := &p.nodes[at]

	// Dual-announce check: an announce originated by this cluster's deputy
	// while the head also announced a CONTRIBUTION means the takeover claim
	// was forged — the head is demonstrably alive and its aggregate is
	// already in flight, so the deputy's stand-in can only double-count or
	// substitute a fabrication. Every member that observed both
	// transmissions indicts the deputy, as does the live head itself, so a
	// compromised deputy gains no forgery power from the failover path.
	// Two deliberate scopes keep honest rounds alarm-free:
	//   - deputyClaimed restricts the check to claims against THIS
	//     cluster's head: after churn repair the same node can be listed in
	//     one roster while legitimately standing in for another cluster's
	//     dead head;
	//   - a head whose announce carried count 0 (failed solve) does not
	//     indict, and neither do members who saw it — the takeover solve is
	//     the cluster's recovery path then, not a forgery.
	if a.Origin != at && st.deputy == a.Origin && st.deputyClaimed {
		if (st.role == roleMember && st.headContributed) ||
			(st.role == roleHead && st.myAnnounce != nil && st.myAnnounce.ClusterCnt > 0) {
			p.raiseAlarm(at, a.Origin, a.ClusterSumOrZero(), 0, "dual-announce")
			return
		}
	}

	// Witness check 1: members of the announcing head's cluster verify the
	// announce against the echoed F vector and the claimed participant set.
	// Four sub-checks:
	//   (a) the announce is structurally coherent: the mask fits the roster,
	//       the claimed count is exactly its popcount, and the F matrix has
	//       one row per claimed participant;
	//   (b) a claimed subset must be one this witness can solve (viable, and
	//       within the roster) — integrity holds through degradation;
	//   (c) my own F entry matches what I committed for exactly that
	//       participant set — a head forging a row, or claiming my
	//       participation in a subset round I never joined, is caught by me;
	//   (d) solving the echoed rows over the claimed set yields the
	//       announced ClusterSum — caught by every member, in or out of M.
	// A deputy's takeover announce is witnessed exactly like the head's own:
	// same roster, same algebra, same echoed F rows.
	ownCluster := st.head == a.Origin || (st.takeoverBy >= 0 && st.takeoverBy == a.Origin)
	if st.role == roleMember && ownCluster && viableCluster(st) && a.ClusterCnt > 0 {
		m := len(st.roster.Entries)
		c := p.nComponents()
		full := message.FullMask(m)
		k := bits.OnesCount64(a.Mask)
		switch {
		case int(a.Components) != c || a.Mask&^full != 0 ||
			int(a.ClusterCnt) != k || len(a.FMatrix) != k*c ||
			len(a.ClusterSums) != c:
			p.raiseAlarm(at, a.Origin, a.ClusterSumOrZero(), 0, "malformed-announce")
		default:
			solver := st.algebra
			if a.Mask != full {
				sub, err := st.algebra.Subset(a.Mask)
				if err != nil {
					// Unsolvable claimed subset (e.g. below the viability
					// minimum): an honest head never announces one.
					p.raiseAlarm(at, a.Origin, a.ClusterSumOrZero(), 0, "unsolvable-claimed-subset")
					return
				}
				solver = sub
			}
			if observed, expected, forged := p.ownRowForged(st, a, full); forged {
				p.raiseAlarm(at, a.Origin, observed, expected, "own-row-forged")
				return
			}
			column := make([]field.Element, k)
			for comp := 0; comp < c; comp++ {
				for i := 0; i < k; i++ {
					column[i] = a.FMatrix[i*c+comp]
				}
				sum, err := solver.RecoverSum(column)
				if err == nil && sum != a.ClusterSums[comp] {
					p.raiseAlarm(at, a.Origin, a.ClusterSums[comp], sum, "resolve-mismatch")
					return
				}
			}
		}
	}

	// Witness check 2: a head that announced directly to another head
	// verifies its echoed entry in that parent's announce. A missing entry
	// is tolerated (announce loss); a present-but-tampered entry is an
	// attack.
	if st.role == roleHead && st.sentTo == a.Origin && st.myAnnounce != nil {
		want := message.ChildEntry{
			Child:  at,
			Totals: st.myAnnounce.Total(),
			Count:  st.myAnnounce.TotalCount(),
		}
		for _, ch := range a.Children {
			if ch.Child != at {
				continue
			}
			if !ch.Equal(want) {
				p.raiseAlarm(at, a.Origin, firstOrZero(ch.Totals), firstOrZero(want.Totals), "child-echo-tampered")
			}
			break
		}
	}
}

// ownRowForged checks the witness's own row of the echoed F matrix when the
// announce claims this member participated. For a full-mask announce the
// row must match the assembled report the member committed; for a degraded
// announce the member must actually hold a committed sub-report for exactly
// the claimed subset — a head that degrade-announces a set including a
// member that never joined that subset exchange forged the round, and that
// member is guaranteed to notice. An honest head only degrade-solves when
// it holds every claimed member's genuinely-sent sub-report with mask == M,
// so this check never fires on honest rounds.
func (p *Protocol) ownRowForged(st *nodeState, a message.Announce, full uint64) (observed, expected field.Element, forged bool) {
	myBit := uint64(1) << uint(st.myIdx)
	if a.Mask&myBit == 0 {
		return 0, 0, false // not claimed as a participant: nothing to compare
	}
	// Candidate commitments this member made for exactly the claimed
	// participant set: the full-exchange report when the mask covers the
	// whole roster, and the sub-exchange report when its mask matches.
	// Roster views can diverge across churn repair — a head that adopted
	// orphans appends them, so a mask that reads as full in a member's
	// stale pre-adoption roster is the head's degraded subset over the
	// extended one, covering the same nodes at the same indices. Either
	// commitment is a row this member genuinely sent for this set, so
	// either vouches for the echo.
	var candidates []message.Assembled
	if a.Mask == full {
		if o, ok := st.fSeenAt(st.myIdx); ok {
			candidates = append(candidates, o)
		}
	}
	if st.subSent != nil && st.subSent.Mask == a.Mask {
		candidates = append(candidates, *st.subSent)
	}
	if len(candidates) == 0 {
		if a.Mask != full {
			return 0, 0, true // forged participation in a subset round
		}
		return 0, 0, false
	}
	c := int(a.Components)
	row := bits.OnesCount64(a.Mask & (myBit - 1))
	for _, own := range candidates {
		match := true
		for k := 0; k < c && k < len(own.Fs); k++ {
			if a.FMatrix[row*c+k] != own.Fs[k] {
				observed, expected = a.FMatrix[row*c+k], own.Fs[k]
				match = false
				break
			}
		}
		if match {
			return 0, 0, false
		}
	}
	return observed, expected, true
}

// firstOrZero returns the first component or zero.
func firstOrZero(vs []field.Element) field.Element {
	if len(vs) > 0 {
		return vs[0]
	}
	return 0
}

// raiseAlarm broadcasts a witness's integrity alarm. cause names which
// check fired — the forensic causal chain cmd/aggtrace renders.
func (p *Protocol) raiseAlarm(witness, suspect topo.NodeID, observed, expected field.Element, cause string) {
	if witness == p.cfg.Polluter || p.cfg.Colluders[witness] {
		return // the attacker and its colluders do not indict anyone
	}
	p.alarmsRaised++
	if p.env.Sink != nil {
		cluster := trace.NoCluster
		if h := p.nodes[witness].head; h >= 0 {
			cluster = h
		}
		p.emit(witness, cluster, trace.PhaseAnnounce, trace.TypeAlarm, cause,
			"suspect=%d observed=%v expected=%v", suspect, observed, expected)
	}
	p.env.MAC.Send(message.Build(
		message.KindAlarm, witness, message.BroadcastID, p.round,
		message.MarshalAlarm(message.Alarm{Suspect: suspect, Observed: observed, Expected: expected})))
}

// AlarmsRaised counts witness alarms transmitted network-wide in the last
// round (delivered to the base station or not).
func (p *Protocol) AlarmsRaised() int { return p.alarmsRaised }

// onAlarm floods alarms network-wide (every node rebroadcasts each distinct
// alarm once) and collects them at the base station. Flooding is what makes
// detection robust even when the only aggregation path passes through the
// suspect: a compromised node can drop an alarm, but it cannot stop its
// honest neighbours from relaying it around. Alarms are rare (one per
// witnessed violation), so the flood's cost is negligible and bounded by
// the per-node dedup.
func (p *Protocol) onAlarm(at topo.NodeID, msg *message.Message) {
	a, err := message.UnmarshalAlarm(msg.Payload)
	if err != nil {
		return
	}
	key := alarmKey(a)
	if at == topo.BaseStationID {
		p.bsAlarms[key] = a
		return
	}
	st := &p.nodes[at]
	if at == p.cfg.Polluter || p.cfg.Colluders[at] {
		return // the attacker and its colluders suppress alarms
	}
	if st.alarmed[key] {
		return
	}
	if st.alarmed == nil {
		st.alarmed = make(map[string]bool)
	}
	st.alarmed[key] = true
	p.env.MAC.Send(message.Build(message.KindAlarm, at, message.BroadcastID, msg.Round, msg.Payload))
}

func alarmKey(a message.Alarm) string {
	return fmt.Sprintf("%d:%d:%d", a.Suspect, uint64(a.Observed), uint64(a.Expected))
}
