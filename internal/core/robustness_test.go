package core

import (
	"testing"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/topo"
)

// These tests inject malformed or misdirected frames straight into the
// protocol's receive path after a clean round, asserting the handlers
// tolerate garbage without panicking or corrupting the base station's view.

func robustnessFixture(t *testing.T) (*Protocol, topo.NodeID) {
	t.Helper()
	env, p := run(t, 300, 81, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	head := p.PickAttacker(false)
	if head < 0 {
		t.Skip("no head")
	}
	return p, head
}

func TestGarbagePayloadsIgnored(t *testing.T) {
	p, head := robustnessFixture(t)
	garbage := []byte{0xde, 0xad}
	kinds := []message.Kind{
		message.KindHello, message.KindJoin, message.KindRoster,
		message.KindShare, message.KindRelay, message.KindAssembled,
		message.KindAnnounce, message.KindReading, message.KindAlarm,
	}
	before := p.bsSums[0]
	for _, k := range kinds {
		p.receive(head, message.Build(k, 2, head, 1, garbage))
		p.receive(topo.BaseStationID, message.Build(k, 2, topo.BaseStationID, 1, garbage))
	}
	if p.bsSums[0] != before {
		t.Error("garbage frames changed the base station's totals")
	}
}

func TestShareFromNonMemberIgnored(t *testing.T) {
	p, head := robustnessFixture(t)
	st := &p.nodes[head]
	outsider := topo.NodeID(-1)
	for i := 1; i < len(p.nodes); i++ {
		if p.HeadOf(topo.NodeID(i)) != head {
			outsider = topo.NodeID(i)
			break
		}
	}
	if outsider < 0 {
		t.Skip("no outsider")
	}
	maskBefore := st.recvMask
	pt, err := message.MarshalValues([]field.Element{42})
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := p.env.Seal(outsider, head, pt)
	if err != nil {
		t.Fatal(err)
	}
	p.onShare(head, message.Build(message.KindShare, outsider, head, 1, sealed))
	if st.recvMask != maskBefore {
		t.Error("share from a non-member was accepted")
	}
}

func TestJoinForWrongHeadIgnored(t *testing.T) {
	p, head := robustnessFixture(t)
	joinersBefore := len(p.nodes[head].joiners)
	// A join claiming a DIFFERENT head inside the payload must be dropped.
	p.onJoin(head, message.Build(message.KindJoin, 2, head, 1,
		message.MarshalJoin(message.Join{Head: head + 1, Seed: 5})))
	if len(p.nodes[head].joiners) != joinersBefore {
		t.Error("join with mismatched head accepted")
	}
}

func TestRosterFromWrongHeadIgnored(t *testing.T) {
	p, head := robustnessFixture(t)
	var member topo.NodeID = -1
	for i := 1; i < len(p.nodes); i++ {
		if p.HeadOf(topo.NodeID(i)) == head && topo.NodeID(i) != head {
			member = topo.NodeID(i)
			break
		}
	}
	if member < 0 {
		t.Skip("no member")
	}
	algebraBefore := p.nodes[member].algebra
	payload, err := message.MarshalRoster(message.Roster{
		Head:    99,
		Entries: []message.RosterEntry{{ID: 99, Seed: 1}, {ID: member, Seed: 2}, {ID: 3, Seed: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// From a node that is not the member's head: must be ignored.
	p.onRoster(member, message.Build(message.KindRoster, 99, message.BroadcastID, 1, payload))
	if p.nodes[member].algebra != algebraBefore {
		t.Error("foreign roster was installed")
	}
}

func TestRelayRefusedByNonHead(t *testing.T) {
	p, head := robustnessFixture(t)
	var member topo.NodeID = -1
	for i := 1; i < len(p.nodes); i++ {
		if p.nodes[i].role == roleMember {
			member = topo.NodeID(i)
			break
		}
	}
	if member < 0 {
		t.Skip("no member")
	}
	inner, err := message.Build(message.KindShare, head, 2, 1, []byte{1, 2, 3}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := message.MarshalRelay(message.Relay{Inner: inner})
	if err != nil {
		t.Fatal(err)
	}
	sentBefore := p.env.Rec.TotalTxMessages()
	p.onRelay(member, message.Build(message.KindRelay, head, member, 1, payload))
	// Members must not forward relays (only heads relay for their cluster).
	// Allow the MAC queue to drain; nothing should have been enqueued.
	if err := p.env.Eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.env.Rec.TotalTxMessages() != sentBefore {
		t.Error("non-head forwarded a relay")
	}
}

func TestDuplicateShareIgnored(t *testing.T) {
	p, head := robustnessFixture(t)
	st := &p.nodes[head]
	if st.myIdx < 0 || len(st.roster.Entries) < 2 {
		t.Skip("no cluster state")
	}
	// Replay an already-recorded sender index with a different value.
	idx := (st.myIdx + 1) % len(st.roster.Entries)
	if st.recvMask&(1<<uint(idx)) == 0 {
		t.Skip("share slot empty")
	}
	before := append([]field.Element(nil), st.recvShares[idx]...)
	p.acceptShare(head, idx, []field.Element{999})
	if len(st.recvShares[idx]) != len(before) || st.recvShares[idx][0] != before[0] {
		t.Error("duplicate share overwrote the original")
	}
}

func TestAlarmDedupAtBaseStation(t *testing.T) {
	p, head := robustnessFixture(t)
	alarm := message.MarshalAlarm(message.Alarm{Suspect: head, Observed: 1, Expected: 2})
	for i := 0; i < 5; i++ {
		p.onAlarm(topo.BaseStationID, message.Build(message.KindAlarm, 3, message.BroadcastID, 1, alarm))
	}
	if len(p.bsAlarms) != 1 {
		t.Errorf("bsAlarms = %d, want 1 (deduped)", len(p.bsAlarms))
	}
}
