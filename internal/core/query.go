package core

import (
	"fmt"

	"repro/internal/aggfunc"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// readingVector returns a node's contribution vector for the round: the raw
// sensor reading by default, or one transformed value per active query
// component.
func (p *Protocol) readingVector(id topo.NodeID) []field.Element {
	if len(p.comps) == 0 {
		return []field.Element{p.env.ReadingElement(id)}
	}
	out := make([]field.Element, len(p.comps))
	for k, c := range p.comps {
		out[k] = field.FromInt(c(p.env.Readings[id]))
	}
	return out
}

// readingVectorInto is readingVector into a caller buffer of nComponents()
// elements. It reads only immutable round inputs (the component closures and
// the sensor readings), so the parallel share-preparation pass may call it
// concurrently.
func (p *Protocol) readingVectorInto(dst []field.Element, id topo.NodeID) {
	if len(p.comps) == 0 {
		dst[0] = p.env.ReadingElement(id)
		return
	}
	for k, c := range p.comps {
		dst[k] = field.FromInt(c(p.env.Readings[id]))
	}
}

// QueryOutcome is the base station's answer to a statistics query.
type QueryOutcome struct {
	Value    float64 // the aggregated answer
	Truth    float64 // ground truth over all deployed sensors
	Rounds   int     // aggregation rounds spent (one per additive component)
	Accepted bool    // false if any component round tripped integrity
	Results  []metrics.RoundResult
}

// Error returns |Value - Truth|.
func (o QueryOutcome) Error() float64 {
	d := o.Value - o.Truth
	if d < 0 {
		d = -d
	}
	return d
}

// RunQuery answers a statistics query by compiling it to additive
// components (package aggfunc) and aggregating the whole component vector
// in ONE round: every share, assembled value, and announce carries one
// value per component, so all components are computed over exactly the
// same participant population — the property that makes ratio statistics
// (average, variance) correct under loss. This is the paper's "each sensor
// contributes several inputs to the additive aggregation" reduction made
// operational.
func (p *Protocol) RunQuery(q aggfunc.Query, startRound uint16) (QueryOutcome, error) {
	comps, err := q.Components()
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("core: %w", err)
	}
	p.comps = make([]func(int64) int64, len(comps))
	for i, c := range comps {
		p.comps[i] = c
	}
	defer func() { p.comps = nil }()
	res, err := p.Run(startRound)
	if err != nil {
		return QueryOutcome{}, err
	}
	sums := make([]int64, len(comps))
	for k := range comps {
		sums[k] = p.bsSums[k].Int()
	}
	truthSums := make([]int64, len(comps))
	for k, c := range comps {
		for n := 1; n < p.env.Net.Size(); n++ {
			truthSums[k] += c(p.env.Readings[n])
		}
	}
	value, err := q.Finish(sums)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("core: finish: %w", err)
	}
	truth, err := q.Finish(truthSums)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("core: truth: %w", err)
	}
	return QueryOutcome{
		Value:    value,
		Truth:    truth,
		Rounds:   1,
		Accepted: res.Accepted,
		Results:  []metrics.RoundResult{res},
	}, nil
}
