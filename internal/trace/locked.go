package trace

import "sync"

// The simulation's sinks assume the single-threaded event loop; the
// serving fleet emits from many goroutines (supervisor probes, proxy
// request paths, the chaos controller). Locked and Collector are the
// concurrency-safe adapters for that side of the house.

// Locked serialises emissions into a sink that is not itself safe for
// concurrent use (Tracer, JSONL).
type Locked struct {
	mu   sync.Mutex
	sink Sink
}

// NewLocked wraps a sink with a mutex. A nil inner sink returns nil so
// Fan-style composition keeps the disabled path disabled.
func NewLocked(s Sink) *Locked {
	if s == nil {
		return nil
	}
	return &Locked{sink: s}
}

// Emit forwards under the lock. Nil receivers are valid no-ops.
func (l *Locked) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink.Emit(ev)
	l.mu.Unlock()
}

// Collector is an unbounded concurrency-safe event accumulator — the
// test-and-forensics sink for fleet components, where the bounded ring
// Tracer would silently evict the early events an outage chain needs.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event. Nil receivers are valid no-ops.
func (c *Collector) Emit(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far, in emission order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}
