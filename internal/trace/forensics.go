package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/topo"
)

// Offline forensics over a recorded event stream: the analysis half of
// cmd/aggtrace. Everything here operates on a plain []Event (typically
// loaded via ReadJSONL) so it is equally usable in tests against an
// in-memory Tracer.

// Query selects a slice of a trace. The zero value matches nothing
// useful — build one with NewQuery and tighten from there.
type Query struct {
	Round      int // -1 = any
	Cluster    topo.NodeID
	AnyCluster bool
	Node       topo.NodeID
	AnyNode    bool
	Type       string // empty = any
	Phase      string // empty = any
}

// NewQuery returns the match-everything query.
func NewQuery() Query {
	return Query{Round: -1, AnyCluster: true, AnyNode: true}
}

// Match reports whether the event satisfies every set constraint.
func (q Query) Match(e Event) bool {
	if q.Round >= 0 && int(e.Round) != q.Round {
		return false
	}
	if !q.AnyCluster && e.Cluster != q.Cluster {
		return false
	}
	if !q.AnyNode && e.Node != q.Node {
		return false
	}
	if q.Type != "" && e.Type != q.Type {
		return false
	}
	if q.Phase != "" && e.Phase != q.Phase {
		return false
	}
	return true
}

// Select returns the matching events in their original order.
func Select(events []Event, q Query) []Event {
	var out []Event
	for _, e := range events {
		if q.Match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Summary tallies a trace slice: events by type, by phase, by lifecycle
// state, plus the rounds and clusters it touches.
type Summary struct {
	Total    int
	ByType   map[string]int
	ByPhase  map[string]int
	ByState  map[string]int // lifecycle events only, keyed by state (Cause)
	Rounds   []int
	Clusters []topo.NodeID
}

// Summarize builds a Summary over the matching events.
func Summarize(events []Event, q Query) Summary {
	s := Summary{
		ByType:  make(map[string]int),
		ByPhase: make(map[string]int),
		ByState: make(map[string]int),
	}
	rounds := make(map[int]bool)
	clusters := make(map[topo.NodeID]bool)
	for _, e := range events {
		if !q.Match(e) {
			continue
		}
		s.Total++
		s.ByType[e.Type]++
		if e.Phase != "" {
			s.ByPhase[e.Phase]++
		}
		if e.Type == TypeLifecycle {
			s.ByState[e.Cause]++
		}
		rounds[int(e.Round)] = true
		if e.Cluster >= 0 {
			clusters[e.Cluster] = true
		}
	}
	for r := range rounds {
		s.Rounds = append(s.Rounds, r)
	}
	sort.Ints(s.Rounds)
	for c := range clusters {
		s.Clusters = append(s.Clusters, c)
	}
	sort.Slice(s.Clusters, func(a, b int) bool { return s.Clusters[a] < s.Clusters[b] })
	return s
}

// Write renders the summary.
func (s Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "%d events, %d rounds, %d clusters\n", s.Total, len(s.Rounds), len(s.Clusters))
	writeCounts(w, "by type:", s.ByType)
	writeCounts(w, "by phase:", s.ByPhase)
	if len(s.ByState) > 0 {
		writeCounts(w, "lifecycle states:", s.ByState)
	}
}

func writeCounts(w io.Writer, title string, m map[string]int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "%s\n", title)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-28s %d\n", k, m[k])
	}
}

// PhaseSpan is one protocol phase window as observed in the trace: its
// opening mark and the duration until the next mark (or trace end).
type PhaseSpan struct {
	Round    uint16
	Phase    string
	At       time.Duration
	Duration time.Duration
	Detail   string
}

// Timeline extracts the matching phase windows, in order. Each span lasts
// until the next phase mark in the full trace — filtered or not, so a
// one-round timeline still ends where the next round begins — and the
// final window runs to the latest event time in the trace.
func Timeline(events []Event, q Query) []PhaseSpan {
	var all []Event
	var end time.Duration
	for _, e := range events {
		if e.At > end {
			end = e.At
		}
		if e.Type == TypePhase {
			all = append(all, e)
		}
	}
	var spans []PhaseSpan
	for i, m := range all {
		if !q.Match(m) {
			continue
		}
		until := end
		if i+1 < len(all) {
			until = all[i+1].At
		}
		spans = append(spans, PhaseSpan{
			Round: m.Round, Phase: m.Phase, At: m.At,
			Duration: until - m.At, Detail: m.Detail,
		})
	}
	return spans
}

// WriteTimeline renders phase spans, one per line.
func WriteTimeline(w io.Writer, spans []PhaseSpan) {
	for _, s := range spans {
		fmt.Fprintf(w, "%12v r%-3d %-10s +%-12v %s\n", s.At, s.Round, s.Phase, s.Duration, s.Detail)
	}
}

// ClusterKey identifies one cluster's life in one round.
type ClusterKey struct {
	Round   uint16
	Cluster topo.NodeID
}

// ClusterLife is a cluster's reconstructed state machine for one round:
// its lifecycle transitions in time order plus the point events (crashes,
// watchdogs, alarms) that explain them.
type ClusterLife struct {
	Key      ClusterKey
	States   []Event // TypeLifecycle, in time order
	Context  []Event // crash/watchdog/alarm/recover events scoped to the cluster
	Takeover bool    // the chain contains a takeover claim
}

// Chain renders the state machine as "formed → exchanging → … ".
func (c ClusterLife) Chain() string {
	parts := make([]string, len(c.States))
	for i, e := range c.States {
		parts[i] = e.Cause
	}
	return strings.Join(parts, " → ")
}

// Lifecycles groups the matching lifecycle events per (round, cluster)
// and attaches the explanatory point events, returning chains sorted by
// round then cluster.
func Lifecycles(events []Event, q Query) []ClusterLife {
	byKey := make(map[ClusterKey]*ClusterLife)
	order := []ClusterKey{}
	get := func(k ClusterKey) *ClusterLife {
		c := byKey[k]
		if c == nil {
			c = &ClusterLife{Key: k}
			byKey[k] = c
			order = append(order, k)
		}
		return c
	}
	for _, e := range events {
		if e.Cluster < 0 || !q.Match(e) {
			continue
		}
		k := ClusterKey{Round: e.Round, Cluster: e.Cluster}
		switch e.Type {
		case TypeLifecycle:
			c := get(k)
			c.States = append(c.States, e)
			if e.Cause == StateTakeover {
				c.Takeover = true
			}
		case TypeCrash, TypeWatchdog, TypeAlarm, TypeRecover:
			get(k).Context = append(get(k).Context, e)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].Round != order[b].Round {
			return order[a].Round < order[b].Round
		}
		return order[a].Cluster < order[b].Cluster
	})
	out := make([]ClusterLife, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// WriteLifecycles renders each cluster's chain with its transitions and
// the point events interleaved in time order underneath.
func WriteLifecycles(w io.Writer, lives []ClusterLife) {
	for _, c := range lives {
		fmt.Fprintf(w, "r%d cluster %d: %s\n", c.Key.Round, c.Key.Cluster, c.Chain())
		merged := append(append([]Event{}, c.States...), c.Context...)
		sort.SliceStable(merged, func(a, b int) bool { return merged[a].At < merged[b].At })
		for _, e := range merged {
			fmt.Fprintf(w, "  %s\n", e.String())
		}
	}
}

// Chain is one culprit event plus the ordered causal context that led to
// it — the "-why" rendering unit.
type Chain struct {
	Culprit Event
	Context []Event
}

// suspectOf extracts the suspect node an alarm's detail names.
func suspectOf(e Event) (topo.NodeID, bool) {
	var id int
	if _, err := fmt.Sscanf(e.Detail, "suspect=%d", &id); err != nil {
		return 0, false
	}
	return topo.NodeID(id), true
}

// AlarmChains builds one causal chain per matching alarm: every earlier
// same-round event scoped to the alarm's cluster or its suspect node that
// can explain the verdict (crashes, watchdogs, lifecycle transitions,
// elections, prior alarms).
func AlarmChains(events []Event, q Query) []Chain {
	aq := q
	aq.Type = TypeAlarm
	var out []Chain
	for _, a := range events {
		if !aq.Match(a) {
			continue
		}
		suspect, hasSuspect := suspectOf(a)
		var ctx []Event
		for _, e := range events {
			if e.Round != a.Round || e.At > a.At || e == a {
				continue
			}
			switch e.Type {
			case TypeCrash, TypeWatchdog, TypeLifecycle, TypeElection, TypeAlarm:
			default:
				continue
			}
			inCluster := a.Cluster >= 0 && e.Cluster == a.Cluster
			bySuspect := hasSuspect && (e.Node == suspect || e.Cluster == suspect)
			if inCluster || bySuspect {
				ctx = append(ctx, e)
			}
		}
		out = append(out, Chain{Culprit: a, Context: ctx})
	}
	return out
}

// TakeoverChains builds one chain per cluster whose lifecycle contains a
// takeover claim: the culprit is the claim itself, the context the full
// reconstructed chain (states + crashes/watchdogs) around it.
func TakeoverChains(events []Event, q Query) []Chain {
	var out []Chain
	for _, c := range Lifecycles(events, q) {
		if !c.Takeover {
			continue
		}
		var claim Event
		for _, e := range c.States {
			if e.Cause == StateTakeover {
				claim = e
				break
			}
		}
		merged := append(append([]Event{}, c.States...), c.Context...)
		sort.SliceStable(merged, func(a, b int) bool { return merged[a].At < merged[b].At })
		out = append(out, Chain{Culprit: claim, Context: merged})
	}
	return out
}

// DropChains groups matching drop events by cause, rendering each cause
// as one chain whose culprit is the first drop and whose context is the
// rest (bounded to keep the output readable).
func DropChains(events []Event, q Query) []Chain {
	dq := q
	dq.Type = TypeDrop
	byCause := make(map[string][]Event)
	var causes []string
	for _, e := range events {
		if !dq.Match(e) {
			continue
		}
		if _, seen := byCause[e.Cause]; !seen {
			causes = append(causes, e.Cause)
		}
		byCause[e.Cause] = append(byCause[e.Cause], e)
	}
	sort.Strings(causes)
	out := make([]Chain, 0, len(causes))
	for _, c := range causes {
		evs := byCause[c]
		out = append(out, Chain{Culprit: evs[0], Context: evs[1:]})
	}
	return out
}

// OutageChains reconstructs serving-fleet incidents: one chain per shard
// (or proxy target) ordinal that the trace shows going unhealthy. The
// culprit is the event that started the outage — an injected crash fault,
// a shard leaving healthy, or a breaker opening, whichever came first for
// that ordinal — and the context is every fleet-phase event for the same
// ordinal in time order: fault on/off edges, shard health transitions,
// breaker transitions, and degraded answers that name the shard. A chain
// whose context reaches ShardHealthy (or BreakerClosed) after the culprit
// reads as a full incident: crash → down → restarting → … → healthy.
func OutageChains(events []Event, q Query) []Chain {
	fq := q
	fq.Phase = PhaseFleet
	byNode := make(map[topo.NodeID][]Event)
	var order []topo.NodeID
	for _, e := range events {
		if !fq.Match(e) {
			continue
		}
		switch e.Type {
		case TypeFault, TypeShard, TypeBreaker, TypeDegraded:
		default:
			continue
		}
		if _, seen := byNode[e.Node]; !seen {
			order = append(order, e.Node)
		}
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	var out []Chain
	for _, n := range order {
		evs := byNode[n]
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
		culprit := -1
		for i, e := range evs {
			bad := e.Type == TypeFault && !strings.HasSuffix(e.Cause, "-lifted") ||
				e.Type == TypeShard && e.Cause != ShardHealthy ||
				e.Type == TypeBreaker && e.Cause != BreakerClosed
			if bad {
				culprit = i
				break
			}
		}
		if culprit < 0 {
			continue // this ordinal never went unhealthy; not an outage
		}
		ctx := append([]Event{}, evs[:culprit]...)
		ctx = append(ctx, evs[culprit+1:]...)
		out = append(out, Chain{Culprit: evs[culprit], Context: ctx})
	}
	return out
}

// actionOf extracts the campaign action id an attack or breach event's
// detail names (the "action=<id>" token every campaign event leads with).
func actionOf(e Event) (int, bool) {
	var id int
	if _, err := fmt.Sscanf(e.Detail, "action=%d", &id); err != nil {
		return 0, false
	}
	return id, true
}

// BreachChains builds one causal chain per adversary action: the culprit
// is the TypeAttack event recording the action (tamper, forgery, replay,
// collusion capture), the context everything the trace shows following
// from it — breach events carrying the same action id, plus every
// same-round witness verdict, alarm, and lifecycle transition scoped to
// the attacked cluster, in time order. A chain ending in an alarm reads
// as a catch; one ending in a TypeBreach event reads as a silent breach.
// Unlike AlarmChains this looks forward: the attack precedes its
// consequences.
func BreachChains(events []Event, q Query) []Chain {
	aq := q
	aq.Type = TypeAttack
	var out []Chain
	for _, a := range events {
		if !aq.Match(a) {
			continue
		}
		id, hasID := actionOf(a)
		var ctx []Event
		for _, e := range events {
			if e.Round != a.Round || e == a {
				continue
			}
			switch e.Type {
			case TypeBreach:
				if eid, ok := actionOf(e); ok && hasID && eid == id {
					ctx = append(ctx, e)
				}
				continue
			case TypeWitness, TypeAlarm, TypeLifecycle:
			default:
				continue
			}
			if a.Cluster >= 0 && e.Cluster == a.Cluster {
				ctx = append(ctx, e)
			}
		}
		sort.SliceStable(ctx, func(x, y int) bool { return ctx[x].At < ctx[y].At })
		out = append(out, Chain{Culprit: a, Context: ctx})
	}
	return out
}

// WriteChains renders chains: the culprit line, then its context indented.
func WriteChains(w io.Writer, chains []Chain, maxContext int) {
	for i, c := range chains {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s\n", c.Culprit.String())
		ctx := c.Context
		elided := 0
		if maxContext > 0 && len(ctx) > maxContext {
			elided = len(ctx) - maxContext
			ctx = ctx[:maxContext]
		}
		for _, e := range ctx {
			fmt.Fprintf(w, "    %s\n", e.String())
		}
		if elided > 0 {
			fmt.Fprintf(w, "    … %d more\n", elided)
		}
	}
}
