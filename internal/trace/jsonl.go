package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL streams every event as one JSON object per line — the on-disk
// trace format cmd/aggtrace consumes. Writes are buffered; call Flush (or
// Close) before reading the output. The first write error is sticky and
// reported by Flush/Close so a full disk cannot silently truncate a
// forensic trace.
type JSONL struct {
	w   *bufio.Writer
	c   io.Closer // non-nil when NewJSONL was handed an io.WriteCloser
	err error
	n   int
}

// NewJSONL returns a sink writing one JSON line per event to w. When w is
// also an io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit writes the event. Errors are latched, not returned — the emit path
// must stay cheap and infallible for callers.
func (j *JSONL) Emit(ev Event) {
	if j.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		j.err = fmt.Errorf("trace: encode event: %w", err)
		return
	}
	if _, err := j.w.Write(data); err != nil {
		j.err = fmt.Errorf("trace: write event: %w", err)
		return
	}
	if err := j.w.WriteByte('\n'); err != nil {
		j.err = fmt.Errorf("trace: write event: %w", err)
		return
	}
	j.n++
}

// Count returns the number of events successfully encoded.
func (j *JSONL) Count() int { return j.n }

// Flush drains the buffer and returns the first sticky error, if any.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("trace: flush: %w", err)
	}
	return j.err
}

// Close flushes and, when the underlying writer is closable, closes it.
func (j *JSONL) Close() error {
	ferr := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && ferr == nil {
			ferr = fmt.Errorf("trace: close: %w", cerr)
		}
		j.c = nil
	}
	return ferr
}

// ReadJSONL parses a JSONL trace stream back into events, tolerating
// blank lines. A malformed line fails with its line number so truncated
// traces are diagnosable.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
