package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Request-correlation forensics: reconstruct one served query's journey
// across the serving stack from its TypeRequest events. The proxy, fleet,
// and station each stamp the request id into Detail as a req=<id> token,
// so a span tree needs nothing but the recorded stream — no in-band
// context propagation beyond the X-Agg-Request-Id header.

// Token extracts the value of a space-separated k=v token from an event
// Detail string.
func Token(detail, key string) (string, bool) {
	for _, f := range strings.Fields(detail) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v, true
		}
	}
	return "", false
}

// stripTokens returns detail without the named k=v tokens — rendering
// helpers drop req= and job= once the tree structure already says them.
func stripTokens(detail string, keys ...string) string {
	fields := strings.Fields(detail)
	out := fields[:0]
next:
	for _, f := range fields {
		for _, k := range keys {
			if strings.HasPrefix(f, k+"=") {
				continue next
			}
		}
		out = append(out, f)
	}
	return strings.Join(out, " ")
}

// RequestEvents selects the TypeRequest events for one request id, in
// time order.
func RequestEvents(events []Event, id string) []Event {
	var out []Event
	for _, e := range events {
		if e.Type != TypeRequest {
			continue
		}
		if v, ok := Token(e.Detail, "req"); ok && v == id {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// RequestIDs returns the distinct request ids present in the trace, in
// first-appearance order — how aggtrace lists candidates when asked for a
// request it cannot find.
func RequestIDs(events []Event) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range events {
		if e.Type != TypeRequest {
			continue
		}
		if v, ok := Token(e.Detail, "req"); ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// RequestSpan is one node of a request's span tree: either a standalone
// stage (proxy forward, fleet fan-out/merge) or a job grouping the
// station-side stages that share a job=<id> token.
type RequestSpan struct {
	Job    string  // job id, "" for standalone stages
	Events []Event // the span's stages in time order
}

// Start returns the span's first event time.
func (s RequestSpan) Start() time.Duration { return s.Events[0].At }

// RequestTree groups one request's events into spans: events carrying a
// job= token collapse into one span per job (ordered by the job's first
// event); the rest stand alone. The result is the tree aggtrace renders —
// forward/fan-out/merge at the top level, per-job admit→run→done nested.
func RequestTree(events []Event, id string) []RequestSpan {
	evs := RequestEvents(events, id)
	byJob := make(map[string]int)
	var spans []RequestSpan
	for _, e := range evs {
		if job, ok := Token(e.Detail, "job"); ok {
			i, seen := byJob[job]
			if !seen {
				i = len(spans)
				byJob[job] = i
				spans = append(spans, RequestSpan{Job: job})
			}
			spans[i].Events = append(spans[i].Events, e)
			continue
		}
		spans = append(spans, RequestSpan{Events: []Event{e}})
	}
	return spans
}

// WriteRequestTree renders one request's span tree with per-stage timings
// offset from the request's first recorded event. Unknown ids return an
// error naming the ids the trace does hold.
func WriteRequestTree(w io.Writer, events []Event, id string) error {
	spans := RequestTree(events, id)
	if len(spans) == 0 {
		ids := RequestIDs(events)
		if len(ids) == 0 {
			return fmt.Errorf("trace holds no request events")
		}
		if len(ids) > 8 {
			ids = append(ids[:8], "…")
		}
		return fmt.Errorf("no events for request %s (trace holds: %s)", id, strings.Join(ids, ", "))
	}
	start := spans[0].Start()
	var end time.Duration
	n := 0
	for _, s := range spans {
		n += len(s.Events)
		if last := s.Events[len(s.Events)-1].At; last > end {
			end = last
		}
	}
	fmt.Fprintf(w, "request %s: %d stages, %v end-to-end\n", id, n, end-start)
	for _, s := range spans {
		if s.Job == "" {
			e := s.Events[0]
			fmt.Fprintf(w, "  %-9s +%-12v %s\n", e.Cause, e.At-start, stripTokens(e.Detail, "req"))
			continue
		}
		fmt.Fprintf(w, "  job %s\n", s.Job)
		for _, e := range s.Events {
			fmt.Fprintf(w, "    %-9s +%-12v %s\n", e.Cause, e.At-start, stripTokens(e.Detail, "req", "job"))
		}
	}
	return nil
}
