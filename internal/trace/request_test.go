package trace

import (
	"strings"
	"testing"
	"time"
)

// serveEvent builds a request-lifecycle event the way the serving layers
// emit them.
func serveEvent(at time.Duration, stage, detail string) Event {
	return Event{At: at, Node: -1, Cluster: NoCluster,
		Phase: PhaseServe, Type: TypeRequest, Cause: stage, Detail: detail}
}

func sampleRequestTrace() []Event {
	return []Event{
		serveEvent(0, StageForward, "req=r1 target=http://a attempt=0"),
		serveEvent(1*time.Millisecond, StageAdmit, "req=r1 job=s0-q-1 kind=query"),
		serveEvent(2*time.Millisecond, StageRun, "req=r1 job=s0-q-1 worker=0 queue_wait=1ms"),
		serveEvent(8*time.Millisecond, StageDone, "req=r1 job=s0-q-1 ran=6ms"),
		serveEvent(1*time.Millisecond, StageAdmit, "req=r1 job=s1-q-1 kind=query"),
		serveEvent(9*time.Millisecond, StageDone, "req=r1 job=s1-q-1 ran=7ms"),
		serveEvent(10*time.Millisecond, StageMerge, "req=r1 shards=2"),
		// A second request interleaved — must not leak into r1's tree.
		serveEvent(3*time.Millisecond, StageAdmit, "req=r2 job=s0-q-2 kind=epoch"),
		// A non-request event with a coincidental req= token.
		{At: 0, Type: TypeAlarm, Detail: "req=r1 bogus"},
	}
}

func TestToken(t *testing.T) {
	if v, ok := Token("req=abc job=s0-q-1", "req"); !ok || v != "abc" {
		t.Fatalf("Token req = %q,%v", v, ok)
	}
	if v, ok := Token("req=abc job=s0-q-1", "job"); !ok || v != "s0-q-1" {
		t.Fatalf("Token job = %q,%v", v, ok)
	}
	if _, ok := Token("req=abc", "missing"); ok {
		t.Fatal("Token must miss absent keys")
	}
	// A key that is a suffix of another key must not match.
	if _, ok := Token("xreq=abc", "req"); ok {
		t.Fatal("Token must match whole tokens only")
	}
}

func TestRequestEventsFiltersAndOrders(t *testing.T) {
	evs := RequestEvents(sampleRequestTrace(), "r1")
	if len(evs) != 7 {
		t.Fatalf("got %d events, want 7", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events not time-ordered")
		}
	}
	for _, e := range evs {
		if e.Type != TypeRequest {
			t.Fatalf("non-request event leaked: %v", e)
		}
	}
}

func TestRequestIDs(t *testing.T) {
	ids := RequestIDs(sampleRequestTrace())
	if len(ids) != 2 || ids[0] != "r1" || ids[1] != "r2" {
		t.Fatalf("RequestIDs = %v, want [r1 r2]", ids)
	}
}

func TestRequestTreeGroupsJobs(t *testing.T) {
	spans := RequestTree(sampleRequestTrace(), "r1")
	// forward, job s0-q-1, job s1-q-1, merge.
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	if spans[0].Job != "" || spans[0].Events[0].Cause != StageForward {
		t.Fatalf("span 0 = %+v, want forward", spans[0])
	}
	if spans[1].Job != "s0-q-1" || len(spans[1].Events) != 3 {
		t.Fatalf("span 1 = %+v, want job s0-q-1 with 3 stages", spans[1])
	}
	if spans[2].Job != "s1-q-1" || len(spans[2].Events) != 2 {
		t.Fatalf("span 2 = %+v, want job s1-q-1 with 2 stages", spans[2])
	}
	if spans[3].Events[0].Cause != StageMerge {
		t.Fatalf("span 3 = %+v, want merge", spans[3])
	}
}

func TestWriteRequestTree(t *testing.T) {
	var sb strings.Builder
	if err := WriteRequestTree(&sb, sampleRequestTrace(), "r1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"request r1: 7 stages, 10ms end-to-end",
		"job s0-q-1",
		"queue_wait=1ms",
		"ran=6ms",
		"merge",
		"shards=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// The req= token is structural, not rendered per line.
	if strings.Contains(out, "req=r1") {
		t.Errorf("tree should strip req= tokens:\n%s", out)
	}
	if strings.Contains(out, "r2") {
		t.Errorf("other request leaked into tree:\n%s", out)
	}
}

func TestWriteRequestTreeUnknownID(t *testing.T) {
	var sb strings.Builder
	err := WriteRequestTree(&sb, sampleRequestTrace(), "nope")
	if err == nil {
		t.Fatal("unknown id must error")
	}
	if !strings.Contains(err.Error(), "r1") {
		t.Fatalf("error should list known ids, got: %v", err)
	}
	err = WriteRequestTree(&sb, nil, "nope")
	if err == nil || !strings.Contains(err.Error(), "no request events") {
		t.Fatalf("empty trace error = %v", err)
	}
}
