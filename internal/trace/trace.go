// Package trace is the repository's flight recorder: a structured,
// typed event log of everything the protocol stack did and why. Every
// layer of the simulation — the event engine, the radio medium, the MAC,
// and each core protocol phase — emits Events into a Sink; sinks include
// a bounded in-memory ring buffer (Tracer), a JSONL stream writer for
// offline forensics with cmd/aggtrace, and a thread-safe Stats counter
// set for live observation over expvar.
//
// Tracing is optional and designed to vanish when disabled: every emit
// site guards on a nil sink before building the event, so the hot path
// pays exactly one nil check per site. A nil *Tracer is additionally a
// valid no-op receiver everywhere, preserving the pre-flight-recorder
// contract.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/topo"
)

// NoCluster marks an event that is not scoped to any cluster.
const NoCluster = topo.NodeID(-1)

// Protocol phases an event can belong to. These mirror the round's
// schedule (core.Config's phase times) plus the cross-round repair window.
const (
	PhaseFormation = "formation" // HELLO flood, election, joins
	PhaseRoster    = "roster"    // dissolution + final roster broadcasts
	PhaseExchange  = "exchange"  // polynomial share distribution
	PhaseAssembly  = "assembly"  // assembled column-sum reports + recovery checkpoints
	PhaseAnnounce  = "announce"  // CH-tree aggregation, witnessing, alarms
	PhaseFailover  = "failover"  // watchdogs, takeover claims, stand-in announces
	PhaseRepair    = "repair"    // cross-round churn repair window
	PhaseRadio     = "radio"     // medium-level events (drops and their causes)
	PhaseMAC       = "mac"       // MAC-level events (queue drops, ARQ exhaustion)
	PhaseEngine    = "engine"    // simulation-engine events (run lifecycle)
	PhaseFleet     = "fleet"     // serving-fleet events (faults, shard health, breakers)
	PhaseServe     = "serve"     // request lifecycle across proxy, fleet, and station
	PhaseAttack    = "attack"    // adversary campaign events (actions, breaches)
)

// Event types. Lifecycle events carry the cluster's new state in Cause;
// the remaining types mark point facts (an alarm, a frame drop, a crash).
const (
	TypePhase     = "phase"     // a protocol phase window opened
	TypeLifecycle = "lifecycle" // a cluster's state machine advanced (state in Cause)
	TypeElection  = "election"  // a node became (or refused to become) a head
	TypeJoin      = "join"      // a member picked a head
	TypeWitness   = "witness"   // a witness check ran and passed judgement
	TypeAlarm     = "alarm"     // an integrity alarm was raised (causal chain in Cause)
	TypeWatchdog  = "watchdog"  // a head-silence watchdog expired
	TypeCrash     = "crash"     // a node fail-stopped
	TypeRecover   = "recover"   // a node rebooted or a head stood down post-recovery
	TypeDrop      = "drop"      // a frame was lost (cause: collision/fading/loss/queue)
	TypeEngine    = "engine"    // engine run started/drained/hit its limit
	TypeRound     = "round"     // per-round engine telemetry (workers, batch groups, grid)
	TypeFault     = "fault"     // an injected chaos fault window turned on or off
	TypeShard     = "shard"     // a supervised shard's health state advanced (state in Cause)
	TypeBreaker   = "breaker"   // a proxy circuit breaker transitioned (state in Cause)
	TypeDegraded  = "degraded"  // a fan-out answered partially (missing shards in Detail)
	TypeRequest   = "request"   // a served request advanced one stage (stage in Cause)
	TypeAttack    = "attack"    // an adversary policy acted (policy in Cause, action id in Detail)
	TypeBreach    = "breach"    // an attack succeeded silently (reconstruction or accepted tamper)
)

// Request lifecycle stages carried in the Cause field of TypeRequest
// events. Detail holds space-separated k=v tokens, always starting with
// req=<request-id>; station stages add job=<job-id> so the span tree can
// group per-job work, and timing stages add their measured durations
// (queue_wait=…, ran=…, took=…).
const (
	StageForward  = "forward"  // proxy relayed the request to a target
	StageFanout   = "fanout"   // fleet submitted one shard's slice of a fan-out
	StageMerge    = "merge"    // fleet merged fan-out answers
	StageAdmit    = "admit"    // station accepted the job into its queue
	StageRun      = "run"      // a worker picked the job up (queue_wait=…)
	StageDone     = "done"     // the job finished successfully (ran=…)
	StageFailed   = "failed"   // the job finished in error (ran=…)
	StageCanceled = "canceled" // the job was canceled or timed out
)

// Cluster lifecycle states carried in the Cause field of TypeLifecycle
// events. A cluster's trace, filtered to its head and ordered by time, is
// an explicit state machine: formed → exchanging → assembling →
// [repolled → degraded →] announced | silent → takeover → corroborated →
// announced, with failed/stood-down/dissolved/promoted as the exits.
const (
	StateFormed       = "formed"       // roster published; algebra installed
	StateExchanging   = "exchanging"   // share distribution started
	StateAssembling   = "assembling"   // head committed its own column sum
	StateRepolled     = "repolled"     // head re-polled missing reporters
	StateDegraded     = "degraded"     // head broadcast a subset Reassemble
	StateAnnounced    = "announced"    // cluster sum transmitted up the tree
	StateRebutted     = "rebutted"     // live head re-broadcast against a takeover claim
	StateSilent       = "silent"       // deputy observed head silence at its watchdog
	StateTakeover     = "takeover"     // deputy claimed the takeover
	StateCorroborated = "corroborated" // member majority corroborated the silence
	StateStoodDown    = "stood-down"   // deputy retracted its claim
	StateFailed       = "failed"       // cluster contributes nothing this round
	StateDissolved    = "dissolved"    // cluster dissolved (undersized or dead remnant)
	StatePromoted     = "promoted"     // deputy promoted to permanent head
	StateOrphaned     = "orphaned"     // member re-joined after its cluster died
	StateAdopted      = "adopted"      // head published an extended roster with orphans
)

// Serving-fleet states. Shard health (Cause of TypeShard events, fleet
// supervisor §DESIGN "Failure domains"): healthy → suspect → down →
// restarting → healthy. Breaker states (Cause of TypeBreaker events):
// closed → open → half-open → closed.
const (
	ShardHealthy    = "healthy"    // probes pass; in the serving rotation
	ShardSuspect    = "suspect"    // probes failing, not yet evicted
	ShardDown       = "down"       // evicted from routing; restart pending
	ShardRestarting = "restarting" // restarted; on probation until K healthy probes

	BreakerClosed   = "closed"    // requests flow
	BreakerOpen     = "open"      // fast-fail without touching the target
	BreakerHalfOpen = "half-open" // one probe in flight decides reopen vs close
)

// Event is one recorded protocol action: who did what, when (virtual
// time), in which round, phase, and cluster, and why.
type Event struct {
	At      time.Duration `json:"at"`
	Round   uint16        `json:"round"`
	Node    topo.NodeID   `json:"node"`
	Cluster topo.NodeID   `json:"cluster"` // owning cluster's head; NoCluster when unscoped
	Phase   string        `json:"phase,omitempty"`
	Type    string        `json:"type"`
	Cause   string        `json:"cause,omitempty"`  // lifecycle state or causal chain
	Detail  string        `json:"detail,omitempty"` // free-form parameters
}

// String renders one line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v r%-3d node=%-4d", e.At, e.Round, e.Node)
	if e.Cluster >= 0 {
		fmt.Fprintf(&b, " cluster=%-4d", e.Cluster)
	} else {
		b.WriteString(" cluster=-   ")
	}
	fmt.Fprintf(&b, " %-10s %-12s", e.Phase, e.Type)
	if e.Cause != "" {
		fmt.Fprintf(&b, " %s", e.Cause)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " | %s", e.Detail)
	}
	return b.String()
}

// Sink consumes flight-recorder events. Implementations must tolerate
// being called from the (single-threaded) simulation loop; sinks read
// concurrently by other goroutines (Stats) synchronise internally.
type Sink interface {
	Emit(Event)
}

// Tracer is a fixed-capacity ring buffer of events — the in-memory sink
// behind aggsim's -trace dump.
type Tracer struct {
	buf     []Event
	next    int
	total   int
	dropped int
}

// New returns a tracer holding up to capacity events (older ones are
// evicted). Capacity below 1 is clamped to 1.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit appends an event, evicting the oldest at capacity. Nil tracers are
// valid no-ops (callers still should nil-check first to skip building the
// event at all).
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % cap(t.buf)
		t.dropped++
	}
	t.total++
}

// Record is the legacy formatted-event shim: category maps to the event
// type, the formatted text to Detail. Nil tracers are valid no-ops.
func (t *Tracer) Record(at time.Duration, node topo.NodeID, category, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Node: node, Cluster: NoCluster, Type: category,
		Detail: fmt.Sprintf(format, args...)})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total returns the number of events ever recorded (including evicted).
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Filter describes what Dump writes; zero value means everything.
type Filter struct {
	Node    topo.NodeID // match this node only when AnyNode is false
	AnyNode bool
	Type    string // match this event type only; empty = all
}

// AllEvents is the match-everything filter.
func AllEvents() Filter { return Filter{AnyNode: true} }

// NodeEvents filters to one node.
func NodeEvents(id topo.NodeID) Filter { return Filter{Node: id} }

// TypeEvents filters to one event type.
func TypeEvents(typ string) Filter { return Filter{AnyNode: true, Type: typ} }

func (f Filter) match(e Event) bool {
	if !f.AnyNode && e.Node != f.Node {
		return false
	}
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	return true
}

// Dump writes the matching retained events, one per line, plus a summary
// footer when events were evicted.
func (t *Tracer) Dump(w io.Writer, f Filter) error {
	if t == nil {
		return nil
	}
	var b strings.Builder
	matched := 0
	for _, e := range t.Events() {
		if !f.match(e) {
			continue
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
		matched++
	}
	if t.dropped > 0 {
		fmt.Fprintf(&b, "-- %d earlier events evicted (capacity %d)\n", t.dropped, cap(t.buf))
	}
	fmt.Fprintf(&b, "-- %d events matched of %d retained\n", matched, len(t.buf))
	_, err := io.WriteString(w, b.String())
	return err
}

// Counts returns per-type event counts over retained events.
func (t *Tracer) Counts() map[string]int {
	if t == nil {
		return nil
	}
	out := make(map[string]int)
	for _, e := range t.buf {
		out[e.Type]++
	}
	return out
}

// Multi fans one event stream out to several sinks.
type Multi []Sink

// Emit forwards the event to every sink.
func (m Multi) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Fan combines sinks, flattening and dropping nils: zero live sinks
// return nil (tracing stays disabled), one returns it bare (no fan-out
// indirection on the emit path).
func Fan(sinks ...Sink) Sink {
	live := make(Multi, 0, len(sinks))
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if m, ok := s.(Multi); ok {
			live = append(live, m...)
			continue
		}
		live = append(live, s)
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
