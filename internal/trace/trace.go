// Package trace provides a bounded, structured event log for protocol
// debugging: simulations record what each node did and when (virtual time),
// a ring buffer bounds memory, and dumps can be filtered by node or
// category. Tracing is optional — a nil *Tracer is a no-op everywhere —
// so the hot path pays one nil check when disabled.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/topo"
)

// Event is one recorded protocol action.
type Event struct {
	At       time.Duration // virtual time
	Node     topo.NodeID
	Category string // e.g. "election", "join", "solve", "witness"
	Detail   string
}

// String renders one line.
func (e Event) String() string {
	return fmt.Sprintf("%12v node=%-4d %-10s %s", e.At, e.Node, e.Category, e.Detail)
}

// Tracer is a fixed-capacity ring buffer of events.
type Tracer struct {
	buf     []Event
	next    int
	total   int
	dropped int
}

// New returns a tracer holding up to capacity events (older ones are
// evicted). Capacity below 1 is clamped to 1.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends an event. Nil tracers are valid no-ops.
func (t *Tracer) Record(at time.Duration, node topo.NodeID, category, format string, args ...any) {
	if t == nil {
		return
	}
	ev := Event{At: at, Node: node, Category: category, Detail: fmt.Sprintf(format, args...)}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % cap(t.buf)
		t.dropped++
	}
	t.total++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total returns the number of events ever recorded (including evicted).
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Filter describes what Dump writes; zero value means everything.
type Filter struct {
	Node     topo.NodeID // match this node only; -1 or 0 value via Any
	AnyNode  bool
	Category string // match this category only; empty = all
}

// AllEvents is the match-everything filter.
func AllEvents() Filter { return Filter{AnyNode: true} }

// NodeEvents filters to one node.
func NodeEvents(id topo.NodeID) Filter { return Filter{Node: id} }

// CategoryEvents filters to one category.
func CategoryEvents(cat string) Filter { return Filter{AnyNode: true, Category: cat} }

func (f Filter) match(e Event) bool {
	if !f.AnyNode && e.Node != f.Node {
		return false
	}
	if f.Category != "" && e.Category != f.Category {
		return false
	}
	return true
}

// Dump writes the matching retained events, one per line, plus a summary
// footer when events were evicted.
func (t *Tracer) Dump(w io.Writer, f Filter) error {
	if t == nil {
		return nil
	}
	var b strings.Builder
	matched := 0
	for _, e := range t.Events() {
		if !f.match(e) {
			continue
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
		matched++
	}
	if t.dropped > 0 {
		fmt.Fprintf(&b, "-- %d earlier events evicted (capacity %d)\n", t.dropped, cap(t.buf))
	}
	fmt.Fprintf(&b, "-- %d events matched of %d retained\n", matched, len(t.buf))
	_, err := io.WriteString(w, b.String())
	return err
}

// Counts returns per-category event counts over retained events.
func (t *Tracer) Counts() map[string]int {
	if t == nil {
		return nil
	}
	out := make(map[string]int)
	for _, e := range t.buf {
		out[e.Category]++
	}
	return out
}
