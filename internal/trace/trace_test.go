package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(time.Second, 1, "x", "y") // must not panic
	tr.Emit(Event{Type: "x"})
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Error("nil tracer should report zero")
	}
	if tr.Events() != nil {
		t.Error("nil tracer events should be nil")
	}
	if err := tr.Dump(&strings.Builder{}, AllEvents()); err != nil {
		t.Error(err)
	}
	if tr.Counts() != nil {
		t.Error("nil tracer counts should be nil")
	}
}

func TestRecordAndEvents(t *testing.T) {
	tr := New(10)
	tr.Record(time.Second, 3, "election", "became head pc=%.2f", 0.25)
	tr.Record(2*time.Second, 4, "join", "joined %d", 3)
	if tr.Len() != 2 || tr.Total() != 2 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	if evs[0].Type != "election" || evs[1].Node != 4 {
		t.Errorf("events = %+v", evs)
	}
	if evs[0].Cluster != NoCluster {
		t.Errorf("legacy Record should leave the event unscoped, got cluster %d", evs[0].Cluster)
	}
	if !strings.Contains(evs[0].Detail, "0.25") {
		t.Errorf("formatting lost: %q", evs[0].Detail)
	}
	if !strings.Contains(evs[0].String(), "election") {
		t.Errorf("String = %q", evs[0].String())
	}
}

func TestEventStringCarriesCauseAndCluster(t *testing.T) {
	e := Event{At: time.Second, Round: 3, Node: 7, Cluster: 9,
		Phase: PhaseFailover, Type: TypeLifecycle, Cause: StateTakeover, Detail: "head 9 silent"}
	s := e.String()
	for _, want := range []string{"r3", "node=7", "cluster=9", PhaseFailover, TypeLifecycle, StateTakeover, "head 9 silent"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(time.Duration(i)*time.Second, 1, "c", "%d", i)
	}
	if tr.Len() != 3 || tr.Total() != 5 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	// Oldest two evicted; order preserved.
	if evs[0].Detail != "2" || evs[2].Detail != "4" {
		t.Errorf("events = %+v", evs)
	}
}

func TestCapacityClamped(t *testing.T) {
	tr := New(0)
	tr.Record(0, 1, "a", "x")
	tr.Record(0, 1, "a", "y")
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestDumpFilters(t *testing.T) {
	tr := New(10)
	tr.Record(0, 1, "election", "a")
	tr.Record(0, 2, "join", "b")
	tr.Record(0, 1, "join", "c")

	var all strings.Builder
	if err := tr.Dump(&all, AllEvents()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all.String(), "3 events matched") {
		t.Errorf("all dump:\n%s", all.String())
	}

	var node1 strings.Builder
	if err := tr.Dump(&node1, NodeEvents(1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(node1.String(), "2 events matched") {
		t.Errorf("node dump:\n%s", node1.String())
	}

	var joins strings.Builder
	if err := tr.Dump(&joins, TypeEvents("join")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(joins.String(), "2 events matched") {
		t.Errorf("type dump:\n%s", joins.String())
	}
}

func TestDumpMentionsEviction(t *testing.T) {
	tr := New(1)
	tr.Record(0, 1, "a", "x")
	tr.Record(0, 1, "a", "y")
	var b strings.Builder
	if err := tr.Dump(&b, AllEvents()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "evicted") {
		t.Errorf("dump:\n%s", b.String())
	}
}

func TestCounts(t *testing.T) {
	tr := New(10)
	tr.Record(0, 1, "a", "")
	tr.Record(0, 1, "a", "")
	tr.Record(0, 1, "b", "")
	c := tr.Counts()
	if c["a"] != 2 || c["b"] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{At: time.Second, Round: 1, Node: 3, Cluster: 9, Phase: PhaseAnnounce,
			Type: TypeAlarm, Cause: "own-row-forged", Detail: "observed=1 expected=2"},
		{At: 2 * time.Second, Round: 2, Node: 4, Cluster: NoCluster, Type: TypeCrash},
	}
	for _, ev := range want {
		j.Emit(ev)
	}
	if j.Count() != len(want) {
		t.Fatalf("Count = %d", j.Count())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"type\":\"ok\"}\nnot json\n")); err == nil {
		t.Fatal("expected a line-numbered parse error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader("\n{\"type\":\"a\"}\n\n{\"type\":\"b\"}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != "a" || evs[1].Type != "b" {
		t.Errorf("events = %+v", evs)
	}
}

type errWriter struct{ failed bool }

func (w *errWriter) Write(p []byte) (int, error) {
	w.failed = true
	return 0, bytes.ErrTooLarge
}

func TestJSONLStickyError(t *testing.T) {
	w := &errWriter{}
	j := NewJSONL(w)
	// Overflow the buffer so the write error surfaces.
	big := Event{Detail: strings.Repeat("x", 1<<17)}
	j.Emit(big)
	j.Emit(big)
	if err := j.Flush(); err == nil {
		t.Fatal("expected sticky write error")
	}
}

func TestFan(t *testing.T) {
	if Fan(nil, nil) != nil {
		t.Error("all-nil fan should disable tracing")
	}
	a, b := New(4), New(4)
	if got := Fan(nil, a); got != Sink(a) {
		t.Error("single live sink should be returned bare")
	}
	s := Fan(a, Fan(b, nil))
	s.Emit(Event{Type: "x"})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out lost events: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent scrape while emitting must be race-free
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Snapshot()
		}
	}()
	for i := 0; i < 100; i++ {
		s.Emit(Event{At: time.Duration(i), Round: uint16(i % 4), Phase: PhaseAnnounce, Type: TypeAlarm})
	}
	s.Emit(Event{Round: 9, Type: TypeCrash})
	wg.Wait()
	snap := s.Snapshot()
	if snap["events_total"] != 101 || snap["type."+TypeAlarm] != 100 ||
		snap["type."+TypeCrash] != 1 || snap["phase."+PhaseAnnounce] != 100 {
		t.Errorf("snapshot = %v", snap)
	}
	if snap["round"] != 9 {
		t.Errorf("round high-water = %d", snap["round"])
	}
	keys := s.Keys()
	if len(keys) != len(snap) {
		t.Errorf("keys %v vs snapshot %v", keys, snap)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("keys not sorted: %v", keys)
		}
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := map[string]int64{"events_total": 3, "alarm": 1, "round": 5, "sim_time_ns": 100}
	b := map[string]int64{"events_total": 4, "takeover": 2, "round": 2, "sim_time_ns": 900}
	got := MergeSnapshots(a, b)
	want := map[string]int64{
		// Counters sum across workers; "round" and "sim_time_ns" describe a
		// single deployment's progress, so the merged view takes the max.
		"events_total": 7, "alarm": 1, "takeover": 2, "round": 5, "sim_time_ns": 900,
	}
	if len(got) != len(want) {
		t.Fatalf("MergeSnapshots = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("MergeSnapshots[%q] = %d, want %d", k, got[k], v)
		}
	}
	if out := MergeSnapshots(); len(out) != 0 {
		t.Errorf("empty merge should be empty, got %v", out)
	}
}
