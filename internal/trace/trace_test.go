package trace

import (
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(time.Second, 1, "x", "y") // must not panic
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Error("nil tracer should report zero")
	}
	if tr.Events() != nil {
		t.Error("nil tracer events should be nil")
	}
	if err := tr.Dump(&strings.Builder{}, AllEvents()); err != nil {
		t.Error(err)
	}
	if tr.Counts() != nil {
		t.Error("nil tracer counts should be nil")
	}
}

func TestRecordAndEvents(t *testing.T) {
	tr := New(10)
	tr.Record(time.Second, 3, "election", "became head pc=%.2f", 0.25)
	tr.Record(2*time.Second, 4, "join", "joined %d", 3)
	if tr.Len() != 2 || tr.Total() != 2 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	if evs[0].Category != "election" || evs[1].Node != 4 {
		t.Errorf("events = %+v", evs)
	}
	if !strings.Contains(evs[0].Detail, "0.25") {
		t.Errorf("formatting lost: %q", evs[0].Detail)
	}
	if !strings.Contains(evs[0].String(), "election") {
		t.Errorf("String = %q", evs[0].String())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(time.Duration(i)*time.Second, 1, "c", "%d", i)
	}
	if tr.Len() != 3 || tr.Total() != 5 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	// Oldest two evicted; order preserved.
	if evs[0].Detail != "2" || evs[2].Detail != "4" {
		t.Errorf("events = %+v", evs)
	}
}

func TestCapacityClamped(t *testing.T) {
	tr := New(0)
	tr.Record(0, 1, "a", "x")
	tr.Record(0, 1, "a", "y")
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestDumpFilters(t *testing.T) {
	tr := New(10)
	tr.Record(0, 1, "election", "a")
	tr.Record(0, 2, "join", "b")
	tr.Record(0, 1, "join", "c")

	var all strings.Builder
	if err := tr.Dump(&all, AllEvents()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all.String(), "3 events matched") {
		t.Errorf("all dump:\n%s", all.String())
	}

	var node1 strings.Builder
	if err := tr.Dump(&node1, NodeEvents(1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(node1.String(), "2 events matched") {
		t.Errorf("node dump:\n%s", node1.String())
	}

	var joins strings.Builder
	if err := tr.Dump(&joins, CategoryEvents("join")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(joins.String(), "2 events matched") {
		t.Errorf("category dump:\n%s", joins.String())
	}
}

func TestDumpMentionsEviction(t *testing.T) {
	tr := New(1)
	tr.Record(0, 1, "a", "x")
	tr.Record(0, 1, "a", "y")
	var b strings.Builder
	if err := tr.Dump(&b, AllEvents()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "evicted") {
		t.Errorf("dump:\n%s", b.String())
	}
}

func TestCounts(t *testing.T) {
	tr := New(10)
	tr.Record(0, 1, "a", "")
	tr.Record(0, 1, "a", "")
	tr.Record(0, 1, "b", "")
	c := tr.Counts()
	if c["a"] != 2 || c["b"] != 1 {
		t.Errorf("counts = %v", c)
	}
}
