package trace

import (
	"reflect"
	"testing"
)

func TestMergeSnapshotsEmpty(t *testing.T) {
	if got := MergeSnapshots(); len(got) != 0 {
		t.Fatalf("MergeSnapshots() = %v, want empty", got)
	}
	if got := MergeSnapshots(nil, nil); len(got) != 0 {
		t.Fatalf("MergeSnapshots(nil, nil) = %v, want empty", got)
	}
	if got := MergeSnapshots(map[string]int64{}, nil); len(got) != 0 {
		t.Fatalf("MergeSnapshots(empty, nil) = %v, want empty", got)
	}
	// A nil snapshot alongside a real one must not disturb it.
	a := map[string]int64{"type.alarm": 3}
	if got := MergeSnapshots(nil, a, nil); !reflect.DeepEqual(got, a) {
		t.Fatalf("MergeSnapshots(nil, a, nil) = %v, want %v", got, a)
	}
}

func TestMergeSnapshotsDisjointKeys(t *testing.T) {
	a := map[string]int64{"type.alarm": 2, "phase.announce": 5}
	b := map[string]int64{"type.drop": 7, "phase.radio": 1}
	got := MergeSnapshots(a, b)
	want := map[string]int64{
		"type.alarm": 2, "phase.announce": 5,
		"type.drop": 7, "phase.radio": 1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disjoint merge = %v, want %v", got, want)
	}
}

func TestMergeSnapshotsOverlappingKeys(t *testing.T) {
	a := map[string]int64{"type.alarm": 2, "events_total": 10}
	b := map[string]int64{"type.alarm": 3, "events_total": 4, "type.drop": 1}
	got := MergeSnapshots(a, b)
	if got["type.alarm"] != 5 || got["events_total"] != 14 || got["type.drop"] != 1 {
		t.Fatalf("overlapping merge = %v", got)
	}
}

func TestMergeSnapshotsHighWaterKeys(t *testing.T) {
	// "round" and "sim_time_ns" are progress marks: max, never sum.
	a := map[string]int64{"round": 7, "sim_time_ns": 900}
	b := map[string]int64{"round": 3, "sim_time_ns": 1500}
	got := MergeSnapshots(a, b)
	if got["round"] != 7 {
		t.Fatalf("round = %d, want max 7", got["round"])
	}
	if got["sim_time_ns"] != 1500 {
		t.Fatalf("sim_time_ns = %d, want max 1500", got["sim_time_ns"])
	}
}

func TestMergeSnapshotsAssociative(t *testing.T) {
	// Merging three shards must give the same answer regardless of
	// grouping — ((a,b),c) == (a,(b,c)) == (a,b,c) — so a fleet can fold
	// shard snapshots in any order.
	s0 := map[string]int64{"type.alarm": 1, "events_total": 10, "round": 4, "sim_time_ns": 100}
	s1 := map[string]int64{"type.alarm": 2, "type.drop": 5, "events_total": 20, "round": 9, "sim_time_ns": 50}
	s2 := map[string]int64{"type.drop": 3, "events_total": 30, "round": 6, "sim_time_ns": 400}

	flat := MergeSnapshots(s0, s1, s2)
	leftAssoc := MergeSnapshots(MergeSnapshots(s0, s1), s2)
	rightAssoc := MergeSnapshots(s0, MergeSnapshots(s1, s2))

	if !reflect.DeepEqual(flat, leftAssoc) {
		t.Fatalf("left association differs: %v vs %v", flat, leftAssoc)
	}
	if !reflect.DeepEqual(flat, rightAssoc) {
		t.Fatalf("right association differs: %v vs %v", flat, rightAssoc)
	}
	want := map[string]int64{
		"type.alarm": 3, "type.drop": 8, "events_total": 60,
		"round": 9, "sim_time_ns": 400,
	}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("three-shard merge = %v, want %v", flat, want)
	}
}

func TestMergeSnapshotsDoesNotMutateInputs(t *testing.T) {
	a := map[string]int64{"type.alarm": 2}
	b := map[string]int64{"type.alarm": 3}
	MergeSnapshots(a, b)
	if a["type.alarm"] != 2 || b["type.alarm"] != 3 {
		t.Fatalf("inputs mutated: a=%v b=%v", a, b)
	}
}
