package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/topo"
)

// fixture is a hand-written two-cluster round-3 trace: cluster 7 forms,
// exchanges, goes silent (head crash), is taken over and announced by its
// deputy; cluster 9 completes normally; one alarm fires against node 12.
func fixture() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{At: ms(0), Round: 3, Node: 0, Cluster: NoCluster, Phase: PhaseFormation, Type: TypePhase, Detail: "hello flood"},
		{At: ms(1), Round: 3, Node: 7, Cluster: 7, Phase: PhaseFormation, Type: TypeElection, Cause: "pc-draw"},
		{At: ms(2), Round: 3, Node: 7, Cluster: 7, Phase: PhaseRoster, Type: TypeLifecycle, Cause: StateFormed},
		{At: ms(2), Round: 3, Node: 9, Cluster: 9, Phase: PhaseRoster, Type: TypeLifecycle, Cause: StateFormed},
		{At: ms(3), Round: 3, Node: 0, Cluster: NoCluster, Phase: PhaseExchange, Type: TypePhase, Detail: "shares"},
		{At: ms(4), Round: 3, Node: 7, Cluster: 7, Phase: PhaseExchange, Type: TypeLifecycle, Cause: StateExchanging},
		{At: ms(4), Round: 3, Node: 9, Cluster: 9, Phase: PhaseExchange, Type: TypeLifecycle, Cause: StateExchanging},
		{At: ms(5), Round: 3, Node: 7, Cluster: 7, Type: TypeCrash, Cause: "fail-stop"},
		{At: ms(6), Round: 3, Node: 3, Cluster: NoCluster, Phase: PhaseRadio, Type: TypeDrop, Cause: "collision"},
		{At: ms(6), Round: 3, Node: 4, Cluster: NoCluster, Phase: PhaseRadio, Type: TypeDrop, Cause: "collision"},
		{At: ms(6), Round: 3, Node: 4, Cluster: NoCluster, Phase: PhaseMAC, Type: TypeDrop, Cause: "arq-exhausted"},
		{At: ms(7), Round: 3, Node: 0, Cluster: NoCluster, Phase: PhaseAnnounce, Type: TypePhase, Detail: "announce"},
		{At: ms(8), Round: 3, Node: 8, Cluster: 7, Phase: PhaseFailover, Type: TypeWatchdog, Cause: "head-silent"},
		{At: ms(8), Round: 3, Node: 8, Cluster: 7, Phase: PhaseFailover, Type: TypeLifecycle, Cause: StateSilent},
		{At: ms(9), Round: 3, Node: 8, Cluster: 7, Phase: PhaseFailover, Type: TypeLifecycle, Cause: StateTakeover},
		{At: ms(10), Round: 3, Node: 9, Cluster: 9, Phase: PhaseAnnounce, Type: TypeLifecycle, Cause: StateAnnounced},
		{At: ms(11), Round: 3, Node: 8, Cluster: 7, Phase: PhaseFailover, Type: TypeLifecycle, Cause: StateCorroborated},
		{At: ms(12), Round: 3, Node: 5, Cluster: 9, Phase: PhaseAnnounce, Type: TypeAlarm,
			Cause: "own-row-forged", Detail: "suspect=12 observed=1 expected=2"},
		{At: ms(13), Round: 3, Node: 8, Cluster: 7, Phase: PhaseFailover, Type: TypeLifecycle, Cause: StateAnnounced},
	}
}

func TestQuerySelect(t *testing.T) {
	evs := fixture()
	all := Select(evs, NewQuery())
	if len(all) != len(evs) {
		t.Fatalf("match-all selected %d of %d", len(all), len(evs))
	}
	q := NewQuery()
	q.Round = 4
	if got := Select(evs, q); got != nil {
		t.Fatalf("round 4 should be empty, got %d", len(got))
	}
	q = NewQuery()
	q.AnyCluster, q.Cluster = false, 7
	for _, e := range Select(evs, q) {
		if e.Cluster != 7 {
			t.Fatalf("cluster filter leaked %+v", e)
		}
	}
	q = NewQuery()
	q.Type = TypeDrop
	q.Phase = PhaseRadio
	if got := Select(evs, q); len(got) != 2 {
		t.Fatalf("want 2 radio drops, got %d", len(got))
	}
	q = NewQuery()
	q.AnyNode, q.Node = false, 9
	if got := Select(evs, q); len(got) != 3 {
		t.Fatalf("want 3 events for node 9, got %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(fixture(), NewQuery())
	if s.Total != len(fixture()) {
		t.Fatalf("total %d", s.Total)
	}
	if s.ByType[TypeLifecycle] != 9 || s.ByType[TypeDrop] != 3 || s.ByType[TypeAlarm] != 1 {
		t.Fatalf("type counts %v", s.ByType)
	}
	if s.ByState[StateFormed] != 2 || s.ByState[StateTakeover] != 1 {
		t.Fatalf("state counts %v", s.ByState)
	}
	if len(s.Rounds) != 1 || s.Rounds[0] != 3 {
		t.Fatalf("rounds %v", s.Rounds)
	}
	if len(s.Clusters) != 2 || s.Clusters[0] != 7 || s.Clusters[1] != 9 {
		t.Fatalf("clusters %v", s.Clusters)
	}
	var b strings.Builder
	s.Write(&b)
	for _, want := range []string{"2 clusters", "lifecycle", "by phase:", StateCorroborated} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("summary output missing %q:\n%s", want, b.String())
		}
	}
}

func TestTimeline(t *testing.T) {
	spans := Timeline(fixture(), NewQuery())
	if len(spans) != 3 {
		t.Fatalf("want 3 phase spans, got %d", len(spans))
	}
	if spans[0].Phase != PhaseFormation || spans[0].Duration != 3*time.Millisecond {
		t.Fatalf("formation span %+v", spans[0])
	}
	if spans[1].Phase != PhaseExchange || spans[1].Duration != 4*time.Millisecond {
		t.Fatalf("exchange span %+v", spans[1])
	}
	// Last span runs to the latest event in the trace (13 ms).
	if spans[2].Phase != PhaseAnnounce || spans[2].Duration != 6*time.Millisecond {
		t.Fatalf("announce span %+v", spans[2])
	}
	var b strings.Builder
	WriteTimeline(&b, spans)
	if !strings.Contains(b.String(), PhaseExchange) {
		t.Fatalf("timeline output:\n%s", b.String())
	}
}

func TestLifecyclesReconstructChains(t *testing.T) {
	lives := Lifecycles(fixture(), NewQuery())
	if len(lives) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(lives))
	}
	c7, c9 := lives[0], lives[1]
	if c7.Key.Cluster != 7 || c9.Key.Cluster != 9 {
		t.Fatalf("order %v %v", c7.Key, c9.Key)
	}
	wantChain := "formed → exchanging → silent → takeover → corroborated → announced"
	if got := c7.Chain(); got != wantChain {
		t.Fatalf("cluster 7 chain:\n got %s\nwant %s", got, wantChain)
	}
	if !c7.Takeover || c9.Takeover {
		t.Fatalf("takeover flags: c7=%v c9=%v", c7.Takeover, c9.Takeover)
	}
	// The head's crash and the deputy's watchdog ride along as context.
	types := map[string]int{}
	for _, e := range c7.Context {
		types[e.Type]++
	}
	if types[TypeCrash] != 1 || types[TypeWatchdog] != 1 {
		t.Fatalf("cluster 7 context %v", types)
	}
	if got := c9.Chain(); got != "formed → exchanging → announced" {
		t.Fatalf("cluster 9 chain: %s", got)
	}

	var b strings.Builder
	WriteLifecycles(&b, lives)
	if !strings.Contains(b.String(), "r3 cluster 7: "+wantChain) {
		t.Fatalf("lifecycle output:\n%s", b.String())
	}
}

func TestAlarmChains(t *testing.T) {
	chains := AlarmChains(fixture(), NewQuery())
	if len(chains) != 1 {
		t.Fatalf("want 1 alarm chain, got %d", len(chains))
	}
	c := chains[0]
	if c.Culprit.Cause != "own-row-forged" {
		t.Fatalf("culprit %+v", c.Culprit)
	}
	// Context is scoped to the alarm's cluster (9) before the alarm time:
	// formed, exchanging, announced — and nothing from cluster 7.
	if len(c.Context) != 3 {
		t.Fatalf("context size %d: %v", len(c.Context), c.Context)
	}
	for _, e := range c.Context {
		if e.Cluster != 9 {
			t.Fatalf("context leaked cluster %d event %+v", e.Cluster, e)
		}
	}
}

func TestAlarmChainFollowsSuspectAcrossClusters(t *testing.T) {
	evs := []Event{
		{At: 1, Round: 1, Node: 12, Cluster: 4, Type: TypeCrash, Cause: "fail-stop"},
		{At: 2, Round: 1, Node: 3, Cluster: 8, Type: TypeAlarm,
			Cause: "dual-announce", Detail: "suspect=12 observed=9 expected=0"},
	}
	chains := AlarmChains(evs, NewQuery())
	if len(chains) != 1 || len(chains[0].Context) != 1 {
		t.Fatalf("chains %+v", chains)
	}
	if chains[0].Context[0].Type != TypeCrash {
		t.Fatalf("suspect context %+v", chains[0].Context[0])
	}
}

func TestTakeoverChains(t *testing.T) {
	chains := TakeoverChains(fixture(), NewQuery())
	if len(chains) != 1 {
		t.Fatalf("want 1 takeover chain, got %d", len(chains))
	}
	c := chains[0]
	if c.Culprit.Cause != StateTakeover || c.Culprit.Cluster != 7 {
		t.Fatalf("culprit %+v", c.Culprit)
	}
	// Full merged chain: crash + watchdog + 6 lifecycle states, time-ordered.
	if len(c.Context) != 8 {
		t.Fatalf("context size %d", len(c.Context))
	}
	for i := 1; i < len(c.Context); i++ {
		if c.Context[i].At < c.Context[i-1].At {
			t.Fatalf("context out of order at %d", i)
		}
	}
}

func TestDropChainsGroupByCause(t *testing.T) {
	chains := DropChains(fixture(), NewQuery())
	if len(chains) != 2 {
		t.Fatalf("want 2 causes, got %d", len(chains))
	}
	if chains[0].Culprit.Cause != "arq-exhausted" || chains[1].Culprit.Cause != "collision" {
		t.Fatalf("cause order %q %q", chains[0].Culprit.Cause, chains[1].Culprit.Cause)
	}
	if len(chains[1].Context) != 1 {
		t.Fatalf("collision group should hold one extra drop, got %d", len(chains[1].Context))
	}
}

func TestWriteChainsElidesContext(t *testing.T) {
	ctx := make([]Event, 10)
	for i := range ctx {
		ctx[i] = Event{At: time.Duration(i), Node: topo.NodeID(i), Type: TypeDrop, Cause: "loss"}
	}
	var b strings.Builder
	WriteChains(&b, []Chain{{Culprit: Event{Type: TypeAlarm}, Context: ctx}}, 4)
	if !strings.Contains(b.String(), "… 6 more") {
		t.Fatalf("no elision marker:\n%s", b.String())
	}
	b.Reset()
	WriteChains(&b, []Chain{{Culprit: Event{Type: TypeAlarm}, Context: ctx}}, 0)
	if strings.Contains(b.String(), "more") {
		t.Fatalf("unlimited context still elided:\n%s", b.String())
	}
}
