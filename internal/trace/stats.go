package trace

import (
	"sort"
	"sync"
	"time"
)

// Stats is a live counter sink: it totals events by type and by phase and
// remembers the latest virtual time and round seen. Unlike the other
// sinks it is safe for concurrent reads while the simulation emits —
// it backs the -observe expvar endpoint, which is scraped from an HTTP
// goroutine mid-run.
type Stats struct {
	mu      sync.Mutex
	byType  map[string]int64
	byPhase map[string]int64
	total   int64
	lastAt  time.Duration
	round   uint16
}

// NewStats returns an empty counter sink.
func NewStats() *Stats {
	return &Stats{
		byType:  make(map[string]int64),
		byPhase: make(map[string]int64),
	}
}

// Emit counts the event.
func (s *Stats) Emit(ev Event) {
	s.mu.Lock()
	s.byType[ev.Type]++
	if ev.Phase != "" {
		s.byPhase[ev.Phase]++
	}
	s.total++
	s.lastAt = ev.At
	if ev.Round > s.round {
		s.round = ev.Round
	}
	s.mu.Unlock()
}

// Snapshot returns the counters as a flat map, ready for expvar.Func:
// per-type counts under "type.<t>", per-phase counts under "phase.<p>",
// plus "events_total", "round", and "sim_time_ns".
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.byType)+len(s.byPhase)+3)
	for k, v := range s.byType {
		out["type."+k] = v
	}
	for k, v := range s.byPhase {
		out["phase."+k] = v
	}
	out["events_total"] = s.total
	out["round"] = int64(s.round)
	out["sim_time_ns"] = int64(s.lastAt)
	return out
}

// MergeSnapshots sums counter snapshots key-wise into one map — how a pool
// of deployments (one Stats sink each) presents a single live view. The
// high-water keys "round" and "sim_time_ns" take the max instead of the
// sum, so the merged view still reads as "furthest progress seen".
func MergeSnapshots(snaps ...map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for _, snap := range snaps {
		for k, v := range snap {
			if k == "round" || k == "sim_time_ns" {
				if v > out[k] {
					out[k] = v
				}
				continue
			}
			out[k] += v
		}
	}
	return out
}

// Keys returns the snapshot's keys in deterministic order (tests, text
// rendering).
func (s *Stats) Keys() []string {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
