package ipda

import (
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/topo"
)

// scheduleSlicing arranges every covered node's slice transmissions with
// per-node jitter to spread contention.
func (p *Protocol) scheduleSlicing() {
	window := p.cfg.AggAt - p.cfg.SliceAt
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role == roleUnknown {
			continue // never covered by both trees
		}
		jitter := time.Duration(p.env.Rng.Int63n(int64(window / 2)))
		p.env.Eng.After(jitter, func() { p.slice(id) })
	}
}

// slice splits the node's reading into L pieces per tree and sends the
// pieces (link-encrypted) to neighbouring aggregators of each colour.
func (p *Protocol) slice(id topo.NodeID) {
	st := &p.nodes[id]
	redTargets := p.pickTargets(id, roleRed)
	blueTargets := p.pickTargets(id, roleBlue)
	if redTargets == nil || blueTargets == nil {
		return // not enough aggregators in range: node sits out (paper factor b)
	}
	st.sliced = true
	reading := p.env.ReadingElement(id)
	p.sendPieces(id, reading, redTargets, roleRed)
	p.sendPieces(id, reading, blueTargets, roleBlue)
}

// pickTargets selects L aggregators of the given colour from the node's
// neighbourhood (including itself when it has that colour). Returns nil when
// fewer than L are available or when the key scheme leaves a needed link
// keyless.
func (p *Protocol) pickTargets(id topo.NodeID, colour int) []topo.NodeID {
	st := &p.nodes[id]
	var pool []topo.NodeID
	if colour == roleRed {
		pool = st.redNbrs
	} else {
		pool = st.blueNbrs
	}
	// Keep only neighbours we can actually encrypt to.
	usable := make([]topo.NodeID, 0, len(pool))
	for _, t := range pool {
		if p.env.HasLinkKey(id, t) {
			usable = append(usable, t)
		}
	}
	self := st.role == colour
	need := p.cfg.L
	if self {
		need-- // one piece stays local
	}
	if len(usable) < need {
		return nil
	}
	// Random sample without replacement.
	perm := p.env.Rng.Perm(len(usable))
	targets := make([]topo.NodeID, 0, p.cfg.L)
	if self {
		targets = append(targets, id)
	}
	for _, idx := range perm[:need] {
		targets = append(targets, usable[idx])
	}
	return targets
}

// sendPieces splits reading into len(targets) random pieces summing to it
// and delivers each piece: locally when the target is the node itself,
// otherwise as an encrypted slice frame. The slice plaintext carries the
// tree colour so the base station (an aggregator on both trees) credits
// pieces to the correct tree.
//
// Pieces are drawn uniformly in [0, reading] rather than over the whole
// field: a residually-lost piece then distorts the aggregate by at most
// ~reading, which is what lets the paper's small Th tolerate losses (a
// field-uniform piece would turn one lost frame into a ±2^30 distortion).
// This mirrors slicing over the data domain in the original scheme.
func (p *Protocol) sendPieces(id topo.NodeID, reading field.Element, targets []topo.NodeID, colour int) {
	pieces := make([]field.Element, len(targets))
	var acc field.Element
	bound := reading.Int()
	if bound < 0 {
		bound = -bound
	}
	for i := 0; i < len(pieces)-1; i++ {
		pieces[i] = field.FromInt(p.env.Rng.Int63n(bound + 1))
		acc = acc.Add(pieces[i])
	}
	pieces[len(pieces)-1] = reading.Sub(acc)
	for i, t := range targets {
		if t == id {
			st := &p.nodes[id]
			st.assembled = st.assembled.Add(pieces[i])
			continue
		}
		pt := append(message.MarshalValue(message.Value{V: pieces[i]}), byte(colour))
		sealed, err := p.env.Seal(id, t, pt)
		if err != nil {
			continue // keyless link lost this piece; accounted as data loss
		}
		p.env.MAC.Send(message.Build(message.KindSlice, id, t, p.round, sealed))
	}
}

// onSlice decrypts and assembles a received piece.
func (p *Protocol) onSlice(at topo.NodeID, msg *message.Message) {
	if msg.To != at {
		return // overheard ciphertext is useless without the key
	}
	st := &p.nodes[at]
	if st.role != roleRed && st.role != roleBlue && at != topo.BaseStationID {
		return
	}
	pt, err := p.env.Open(msg.From, at, msg.Payload)
	if err != nil {
		return
	}
	v, err := message.UnmarshalValue(pt)
	if err != nil {
		return
	}
	if at == topo.BaseStationID {
		if len(pt) >= 5 && int(pt[4]) == roleBlue {
			p.sumBlue = p.sumBlue.Add(v.V)
		} else {
			p.sumRed = p.sumRed.Add(v.V)
		}
		return
	}
	st.assembled = st.assembled.Add(v.V)
}
