package ipda

import (
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/topo"
)

// scheduleAggregation arranges every aggregator's single transmission up its
// own tree, deepest levels first (TAG-style epoch schedule).
func (p *Protocol) scheduleAggregation() {
	for i := 1; i < p.env.Net.Size(); i++ {
		id := topo.NodeID(i)
		st := &p.nodes[i]
		if st.role != roleRed && st.role != roleBlue {
			continue
		}
		if st.parent < 0 {
			continue // aggregator that never found a same-colour parent
		}
		slot := p.cfg.MaxHops - st.hops
		if slot < 0 {
			slot = 0
		}
		jitter := time.Duration(p.env.Rng.Int63n(int64(p.cfg.EpochSlot / 2)))
		at := time.Duration(slot)*p.cfg.EpochSlot + jitter
		p.env.Eng.After(at, func() { p.forward(id) })
	}
}

// forward sends the aggregator's assembled value plus its children's
// aggregates to its same-colour parent, applying the pollution attack when
// this node is the configured attacker.
func (p *Protocol) forward(id topo.NodeID) {
	st := &p.nodes[id]
	sum := st.assembled.Add(st.childSum)
	if id == p.cfg.Polluter {
		sum = sum.Add(field.FromInt(p.cfg.PollutionDelta))
	}
	p.env.MAC.Send(message.Build(
		message.KindAggregate, id, st.parent, p.round,
		message.MarshalAggregate(message.Aggregate{Sum: sum, Count: st.childCount + 1}),
	))
}

// onAggregate accumulates a child's aggregate at its parent, or finalises at
// the base station split by the child's tree colour.
func (p *Protocol) onAggregate(at topo.NodeID, msg *message.Message) {
	if msg.To != at {
		return
	}
	agg, err := message.UnmarshalAggregate(msg.Payload)
	if err != nil {
		return
	}
	if at == topo.BaseStationID {
		switch p.colourOf[msg.From] {
		case roleRed:
			p.sumRed = p.sumRed.Add(agg.Sum)
			p.cntRed += agg.Count
		case roleBlue:
			p.sumBlue = p.sumBlue.Add(agg.Sum)
			p.cntBlue += agg.Count
		}
		return
	}
	st := &p.nodes[at]
	st.childSum = st.childSum.Add(agg.Sum)
	st.childCount += agg.Count
}
