package ipda

import (
	"testing"

	"repro/internal/topo"
	"repro/internal/wsn"
)

func run(t *testing.T, nodes int, seed int64, ideal bool, mut func(*Config)) (*wsn.Env, *Protocol) {
	t.Helper()
	wcfg := wsn.DefaultConfig(nodes, seed)
	wcfg.Radio.Ideal = ideal
	env, err := wsn.NewEnv(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, p
}

func TestNewValidation(t *testing.T) {
	env, _ := run(t, 50, 1, true, nil)
	muts := []func(*Config){
		func(c *Config) { c.L = 0 },
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.Th = -1 },
		func(c *Config) { c.DecisionWait = 0 },
		func(c *Config) { c.SliceAt = 0 },
		func(c *Config) { c.AggAt = c.SliceAt },
		func(c *Config) { c.EpochSlot = 0 },
		func(c *Config) { c.MaxHops = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(env, cfg); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
}

func TestIdealDenseTreesAgree(t *testing.T) {
	env, p := run(t, 500, 3, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	red, blue := p.TreeSums()
	if red != blue {
		t.Errorf("ideal channel: red %d != blue %d", red, blue)
	}
	if !res.Accepted {
		t.Error("no attack, no loss: result must be accepted")
	}
	// Dense network: coverage and accuracy should be high (paper Fig 8).
	if res.CoverageRate() < 0.9 {
		t.Errorf("coverage = %.2f", res.CoverageRate())
	}
	if res.Accuracy() < 0.9 || res.Accuracy() > 1.0 {
		t.Errorf("accuracy = %.3f", res.Accuracy())
	}
}

func TestLossyDenseAcceptedWithinTh(t *testing.T) {
	env, p := run(t, 500, 5, false, func(c *Config) { c.Th = 200 })
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.75 {
		t.Errorf("accuracy = %.3f too low for dense network", res.Accuracy())
	}
	red, blue := p.TreeSums()
	t.Logf("red=%d blue=%d true=%d acc=%.3f", red, blue, res.TrueSum, res.Accuracy())
}

func TestPollutionDetected(t *testing.T) {
	env, p := run(t, 500, 7, true, nil)
	if !env.Net.Connected() {
		t.Skip("disconnected deployment")
	}
	// First run to identify a red aggregator to corrupt.
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	var polluter topo.NodeID = -1
	for i := 1; i < env.Net.Size(); i++ {
		if p.nodes[i].role == roleRed && p.nodes[i].parent >= 0 {
			polluter = topo.NodeID(i)
			break
		}
	}
	if polluter < 0 {
		t.Fatal("no red aggregator found")
	}
	// Fresh env (same seed → same topology) with the attack enabled.
	env2, p2 := run(t, 500, 7, true, func(c *Config) {
		c.Polluter = polluter
		c.PollutionDelta = 5000
	})
	_ = env2
	res, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		red, blue := p2.TreeSums()
		t.Errorf("pollution of %d undetected: red=%d blue=%d", polluter, red, blue)
	}
}

func TestSparseNetworkPoorCoverage(t *testing.T) {
	// N=60 on 400x400 is far below the paper's density threshold; many
	// nodes never hear both colours.
	_, p := run(t, 60, 11, true, nil)
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverageRate() > 0.9 {
		t.Errorf("sparse coverage = %.2f, expected poor", res.CoverageRate())
	}
}

func TestOverheadScalesWithL(t *testing.T) {
	_, p1 := run(t, 300, 13, true, func(c *Config) { c.L = 1 })
	r1, err := p1.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, p2 := run(t, 300, 13, true, func(c *Config) { c.L = 2 })
	r2, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TxBytes <= r1.TxBytes {
		t.Errorf("l=2 bytes %d should exceed l=1 bytes %d", r2.TxBytes, r1.TxBytes)
	}
}

func TestDeterministic(t *testing.T) {
	_, p1 := run(t, 300, 17, false, nil)
	r1, err := p1.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	_, p2 := run(t, 300, 17, false, nil)
	r2, err := p2.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReportedSum != r2.ReportedSum || r1.TxBytes != r2.TxBytes {
		t.Errorf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestRolesAreDisjoint(t *testing.T) {
	_, p := run(t, 400, 19, true, nil)
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	// Every node holds exactly one role; aggregation trees are node-disjoint
	// by construction. Verify no node has contributed to both trees:
	// a red aggregator's parent must be red or the BS, blue likewise.
	for i := 1; i < len(p.nodes); i++ {
		st := &p.nodes[i]
		if st.role != roleRed && st.role != roleBlue {
			continue
		}
		if st.parent < 0 || st.parent == topo.BaseStationID {
			continue
		}
		if p.nodes[st.parent].role != st.role {
			t.Errorf("node %d (role %d) has parent %d of role %d",
				i, st.role, st.parent, p.nodes[st.parent].role)
		}
	}
}
