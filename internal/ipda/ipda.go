// Package ipda implements the iPDA comparator (He et al., MILCOM 2008): two
// node-disjoint aggregation trees ("red" and "blue") built by probabilistic
// role election, data slicing with link-encrypted slices across both trees,
// and base-station integrity verification by comparing the two trees'
// results against a loss-tolerance threshold Th.
//
// It serves as the second baseline for the cluster-based protocol in
// internal/core: same substrate, same metrics, so overhead/accuracy/
// detection comparisons are apples-to-apples.
package ipda

import (
	"fmt"
	"time"

	"repro/internal/field"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/wsn"
)

// Role colours. The base station acts as both.
const (
	roleUnknown = 0
	roleRed     = 1
	roleBlue    = 2
	roleBoth    = 3
	roleLeaf    = 4
)

// Config tunes the protocol.
type Config struct {
	L            int           // slices per tree (paper recommends 2)
	K            int           // aggregator-balance parameter (paper uses 4)
	Th           int64         // base-station acceptance threshold
	DecisionWait time.Duration // wait after hearing both colours
	SliceAt      time.Duration // slicing phase start
	AggAt        time.Duration // tree aggregation start
	EpochSlot    time.Duration // per-hop transmission window
	MaxHops      int

	// Polluter, when >= 0, makes that aggregator add PollutionDelta to the
	// aggregate it forwards on its own tree (the paper's data-pollution
	// attack).
	Polluter       topo.NodeID
	PollutionDelta int64
}

// DefaultConfig mirrors the paper's recommended parameters.
func DefaultConfig() Config {
	return Config{
		L:            2,
		K:            4,
		Th:           5,
		DecisionWait: 300 * time.Millisecond,
		SliceAt:      5 * time.Second,
		AggAt:        6500 * time.Millisecond,
		EpochSlot:    150 * time.Millisecond,
		MaxHops:      16,
		Polluter:     -1,
	}
}

type nodeState struct {
	role       int
	hops       int
	redHeard   int
	blueHeard  int
	redNbrs    []topo.NodeID // neighbouring red aggregators, first-heard order
	blueNbrs   []topo.NodeID
	decisionOn bool
	parent     topo.NodeID // same-colour parent for aggregators
	assembled  field.Element
	childSum   field.Element
	childCount uint32
	sliced     bool
}

// Protocol is one iPDA instance over an Env.
type Protocol struct {
	env   *wsn.Env
	cfg   Config
	nodes []nodeState
	round uint16

	// Base-station bookkeeping.
	colourOf map[topo.NodeID]int // roles of the BS's children, learned from HELLOs
	sumRed   field.Element
	cntRed   uint32
	sumBlue  field.Element
	cntBlue  uint32

	startBytes, startMsgs, startApp int
}

// New wires an iPDA instance onto the environment's MAC.
func New(env *wsn.Env, cfg Config) (*Protocol, error) {
	if cfg.L < 1 || cfg.K < 2 || cfg.DecisionWait <= 0 || cfg.SliceAt <= 0 ||
		cfg.AggAt <= cfg.SliceAt || cfg.EpochSlot <= 0 || cfg.MaxHops < 1 || cfg.Th < 0 {
		return nil, fmt.Errorf("ipda: invalid config %+v", cfg)
	}
	// Contention-adaptive slicing window: per-neighbourhood slice traffic
	// grows with density, so stretch beyond the reference degree.
	const referenceDegree = 18.0
	if scale := env.Net.AverageDegree() / referenceDegree; scale > 1 {
		cfg.AggAt = cfg.SliceAt + time.Duration(float64(cfg.AggAt-cfg.SliceAt)*scale)
	}
	return &Protocol{env: env, cfg: cfg}, nil
}

// Run executes one query round.
func (p *Protocol) Run(round uint16) (metrics.RoundResult, error) {
	p.round = round
	n := p.env.Net.Size()
	p.nodes = make([]nodeState, n)
	p.colourOf = make(map[topo.NodeID]int)
	p.sumRed, p.cntRed, p.sumBlue, p.cntBlue = 0, 0, 0, 0
	for i := range p.nodes {
		p.nodes[i].parent = -1
	}
	p.startBytes = p.env.Rec.TotalTxBytes()
	p.startMsgs = p.env.Rec.TotalTxMessages()
	p.startApp = p.env.Rec.AppMessages()
	for i := 0; i < n; i++ {
		id := topo.NodeID(i)
		p.env.MAC.SetReceiver(id, p.receive)
	}

	bs := &p.nodes[topo.BaseStationID]
	bs.role = roleBoth
	p.env.Eng.After(0, func() { p.sendHello(topo.BaseStationID, roleBoth, 0) })
	p.env.Eng.After(p.cfg.SliceAt, func() { p.scheduleSlicing() })
	p.env.Eng.After(p.cfg.AggAt, func() { p.scheduleAggregation() })

	if err := p.env.Eng.Run(0); err != nil {
		return metrics.RoundResult{}, fmt.Errorf("ipda: %w", err)
	}

	covered, participants := 0, 0
	for i := 1; i < n; i++ {
		if p.nodes[i].role != roleUnknown {
			covered++
		}
		if p.nodes[i].sliced {
			participants++
		}
	}
	red, blue := p.sumRed.Int(), p.sumBlue.Int()
	diff := red - blue
	if diff < 0 {
		diff = -diff
	}
	return metrics.RoundResult{
		Protocol:     "ipda",
		TrueSum:      p.env.TrueSum(),
		TrueCount:    p.env.TrueCount(),
		ReportedSum:  (red + blue) / 2,
		ReportedCnt:  int64(p.cntRed+p.cntBlue) / 2,
		Participants: participants,
		Covered:      covered,
		Accepted:     diff <= p.cfg.Th,
		TxBytes:      p.env.Rec.TotalTxBytes() - p.startBytes,
		TxMessages:   p.env.Rec.TotalTxMessages() - p.startMsgs,
		AppMessages:  p.env.Rec.AppMessages() - p.startApp,
	}, nil
}

// TreeSums exposes the two trees' results for Th calibration experiments.
func (p *Protocol) TreeSums() (red, blue int64) {
	return p.sumRed.Int(), p.sumBlue.Int()
}

func (p *Protocol) sendHello(from topo.NodeID, role int, hops int) {
	p.env.MAC.Send(message.Build(
		message.KindHello, from, message.BroadcastID, p.round,
		message.MarshalHello(message.Hello{Origin: from, Role: uint8(role), Hops: uint16(hops)}),
	))
}

func (p *Protocol) receive(at topo.NodeID, msg *message.Message) {
	switch msg.Kind {
	case message.KindHello:
		p.onHello(at, msg)
	case message.KindSlice:
		p.onSlice(at, msg)
	case message.KindAggregate:
		p.onAggregate(at, msg)
	}
}

func (p *Protocol) onHello(at topo.NodeID, msg *message.Message) {
	h, err := message.UnmarshalHello(msg.Payload)
	if err != nil {
		return
	}
	st := &p.nodes[at]
	role := int(h.Role)
	red := role == roleRed || role == roleBoth
	blue := role == roleBlue || role == roleBoth
	if red {
		st.redHeard++
		st.redNbrs = appendUnique(st.redNbrs, msg.From)
	}
	if blue {
		st.blueHeard++
		st.blueNbrs = appendUnique(st.blueNbrs, msg.From)
	}
	if at == topo.BaseStationID {
		p.colourOf[msg.From] = role
		return
	}
	if st.role != roleUnknown || st.decisionOn {
		if st.role == roleRed || st.role == roleBlue {
			p.maybeAdoptParent(at, msg.From, role, int(h.Hops))
		}
		return
	}
	if st.redHeard > 0 && st.blueHeard > 0 {
		st.decisionOn = true
		// Jitter the decision: same-wave nodes otherwise decide — and
		// broadcast their role HELLOs — at the same instant and collide.
		jitter := time.Duration(p.env.Rng.Int63n(int64(p.cfg.DecisionWait)))
		p.env.Eng.After(p.cfg.DecisionWait+jitter, func() { p.decide(at) })
	}
}

// maybeAdoptParent lets an aggregator that decided before hearing a
// same-colour parent adopt one late (possible when its colour was forced by
// the balance rule).
func (p *Protocol) maybeAdoptParent(at, from topo.NodeID, senderRole, senderHops int) {
	st := &p.nodes[at]
	if st.parent >= 0 {
		return
	}
	if senderRole == st.role || senderRole == roleBoth {
		st.parent = from
		st.hops = senderHops + 1
		p.sendHello(at, st.role, st.hops)
	}
}

func (p *Protocol) decide(at topo.NodeID) {
	st := &p.nodes[at]
	if st.role != roleUnknown {
		return
	}
	total := st.redHeard + st.blueHeard
	prob := 1.0
	if total > p.cfg.K {
		prob = float64(p.cfg.K) / float64(total)
	}
	pr := prob * float64(st.blueHeard) / float64(total)
	pb := prob * float64(st.redHeard) / float64(total)
	u := p.env.Rng.Float64()
	switch {
	case u < pr:
		st.role = roleRed
	case u < pr+pb:
		st.role = roleBlue
	default:
		st.role = roleLeaf
		return
	}
	// Parent: first-heard aggregator of our colour (the base station, being
	// both colours, qualifies for either).
	var candidates []topo.NodeID
	if st.role == roleRed {
		candidates = st.redNbrs
	} else {
		candidates = st.blueNbrs
	}
	if len(candidates) == 0 {
		// No same-colour parent reachable: stay leaf-like until one appears.
		st.parent = -1
		return
	}
	st.parent = candidates[0]
	st.hops = p.nodes[st.parent].hops + 1
	p.sendHello(at, st.role, st.hops)
}

func appendUnique(ids []topo.NodeID, id topo.NodeID) []topo.NodeID {
	for _, x := range ids {
		if x == id {
			return ids
		}
	}
	return append(ids, id)
}
