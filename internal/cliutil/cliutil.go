// Package cliutil standardizes how the repo's commands report bad
// invocations: flag values that make no sense (negative node counts, zero
// periods, malformed ports) are usage errors that exit with status 2 after
// printing the flag set's usage, distinct from runtime failures (exit 1).
// Panics and silent misruns are never an acceptable response to bad flags.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
)

// UsageError marks an error caused by a nonsensical invocation.
type UsageError struct{ msg string }

// Error implements error.
func (e *UsageError) Error() string { return e.msg }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{msg: fmt.Sprintf(format, args...)}
}

// IsUsage reports whether err is (or wraps) a usage error. Errors from
// flag.FlagSet parsing count: an unknown or malformed flag is a usage
// error too.
func IsUsage(err error) bool {
	var ue *UsageError
	return errors.As(err, &ue)
}

// Parse runs fs.Parse with the flag package's own error printing silenced
// and wraps any parse failure (unknown flag, malformed value) as a usage
// error, so Exit reports it once with usage and status 2. flag.ErrHelp
// passes through untouched.
func Parse(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(io.Discard)
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return Usagef("%v", err)
}

// Exit terminates the process with the convention: 0 on nil and on -h
// (after printing usage), 2 on usage errors (after printing usage), 1
// otherwise. name prefixes the message.
func Exit(name string, fs *flag.FlagSet, err error) {
	if err == nil {
		os.Exit(0)
	}
	if errors.Is(err, flag.ErrHelp) {
		if fs != nil {
			fs.SetOutput(os.Stdout)
			fs.Usage()
		}
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	if IsUsage(err) {
		if fs != nil {
			fs.SetOutput(os.Stderr)
			fs.Usage()
		}
		os.Exit(2)
	}
	os.Exit(1)
}

// CheckRange fails unless lo <= v <= hi.
func CheckRange(name string, v, lo, hi float64) error {
	if v < lo || v > hi {
		return Usagef("-%s must be in [%g, %g], got %g", name, lo, hi, v)
	}
	return nil
}

// CheckMin fails unless v >= min.
func CheckMin(name string, v, min int) error {
	if v < min {
		return Usagef("-%s must be at least %d, got %d", name, min, v)
	}
	return nil
}

// CheckPositive fails unless v > 0.
func CheckPositive(name string, v float64) error {
	if v <= 0 {
		return Usagef("-%s must be positive, got %g", name, v)
	}
	return nil
}

// CheckAddr validates a listen address of the form host:port (host may be
// empty, port may be 0 for an ephemeral port).
func CheckAddr(name, addr string) error {
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return Usagef("-%s %q is not a host:port address: %v", name, addr, err)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n < 0 || n > 65535 {
		return Usagef("-%s %q has a bad port %q (want 0-65535)", name, addr, port)
	}
	return nil
}
