package repro

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/field"
	"repro/internal/shares"
	"repro/internal/wsn"
)

// Experiment benches — one per table/figure of the evaluation (DESIGN.md
// §4). Each iteration regenerates the experiment in quick mode; run
// cmd/experiments for the full-fidelity sweeps.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiment.RunConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTableDensity(b *testing.B)      { benchExperiment(b, "T1-density") }
func BenchmarkTableClusterShape(b *testing.B) { benchExperiment(b, "T2-clusters") }
func BenchmarkFigCoverage(b *testing.B)       { benchExperiment(b, "F1-coverage") }
func BenchmarkFigOverhead(b *testing.B)       { benchExperiment(b, "F2-overhead") }
func BenchmarkFigAccuracy(b *testing.B)       { benchExperiment(b, "F3-accuracy") }
func BenchmarkFigPrivacy(b *testing.B)        { benchExperiment(b, "F4-privacy") }
func BenchmarkFigIntegrity(b *testing.B)      { benchExperiment(b, "F5-integrity") }
func BenchmarkFigAgreement(b *testing.B)      { benchExperiment(b, "F6-agreement") }
func BenchmarkFigLocalization(b *testing.B)   { benchExperiment(b, "F7-localization") }
func BenchmarkFigCollusion(b *testing.B)      { benchExperiment(b, "F8-collusion") }
func BenchmarkAblationKeyScheme(b *testing.B) { benchExperiment(b, "F9-keyscheme") }
func BenchmarkFigResilience(b *testing.B)     { benchExperiment(b, "F17-resilience") }

// Protocol round benches: one full aggregation round per iteration at the
// papers' N=400 reference density (lossy channel).
//
// Besides the stock -benchmem columns, each round bench reports
// "allocs/node" — allocations per deployed node per round — because a raw
// allocs/op in the hundreds of thousands says nothing about whether the
// per-node cost regressed or the bench just grew. The counter is measured
// with ReadMemStats deltas around exactly the timed region.

func benchProtocolRound(b *testing.B, run func(dep *Deployment) (Result, error)) {
	b.Helper()
	benchRoundN(b, 400, func(dep *Deployment) error {
		_, err := run(dep)
		return err
	})
}

// benchRoundN deploys n nodes once at the reference density (the field side
// scales with sqrt(n) to hold ~20 neighbours per node) and measures one full
// aggregation round — formation included — per iteration.
func benchRoundN(b *testing.B, n int, run func(dep *Deployment) error) {
	b.Helper()
	// Deploy once; each iteration Resets to a fresh per-iteration seed so the
	// timer measures the aggregation round, not topology construction.
	dep, err := NewDeployment(Options{
		Nodes:     n,
		FieldSize: 400 * math.Sqrt(float64(n)/400),
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var ms runtime.MemStats
	var mallocs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := dep.Reset(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		b.StartTimer()
		if err := run(dep); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - before
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(mallocs)/float64(b.N)/float64(n), "allocs/node")
}

// scaleHops returns an announce-depth bound covering a deployment of n
// nodes at the reference density: the field diagonal in radio-range hops,
// plus slack for non-geodesic tree paths. The default MaxHops=16 covers the
// papers' 400m field; without this, every head deeper than 16 hops lands in
// the same announce slot and the large benches time an alarm storm instead
// of the protocol.
func scaleHops(n int) int {
	side := 400 * math.Sqrt(float64(n)/400)
	return int(side*math.Sqrt2/50) + 8
}

// BenchmarkRound gates the scale-out round engine: one full cluster round
// (formation + shares + assembly + announce) at growing deployment sizes,
// constant density, GOMAXPROCS worker pool. See DESIGN.md §"Round execution
// at scale" for what each layer contributes.
func BenchmarkRound(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%dk", n/1000), func(b *testing.B) {
			if n >= 100_000 && testing.Short() {
				// benchtrend's default trend set runs -short; the 100k point
				// takes tens of seconds per iteration, so it is opt-in:
				//   go test -bench 'BenchmarkRound$/n=100k' -benchtime 1x .
				b.Skip("n=100k is skipped under -short")
			}
			benchRoundN(b, n, func(dep *Deployment) error {
				_, err := dep.RunCluster(ClusterOptions{MaxHops: scaleHops(n)})
				return err
			})
		})
	}
}

// BenchmarkRoundSerial pins the Parallelism=1 path at the mid scale so the
// worker-pool speedup is measurable from one snapshot (compare against
// BenchmarkRound/n=10k, which runs at GOMAXPROCS).
func BenchmarkRoundSerial(b *testing.B) {
	benchRoundN(b, 10_000, func(dep *Deployment) error {
		_, err := dep.RunCluster(ClusterOptions{Parallelism: 1, MaxHops: scaleHops(10_000)})
		return err
	})
}

// BenchmarkRoundRetained measures the steady-state epoch — RunRetaining on a
// kept formation, readings re-sampled between rounds — which is where the
// arena-reused round buffers show: the per-round protocol state (share
// tables, F-rows, solve scratch, radio transmission nodes) is all recycled,
// leaving only the per-frame MAC/crypto costs in allocs/node.
func BenchmarkRoundRetained(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%dk", n/1000), func(b *testing.B) {
			wcfg := wsn.DefaultConfig(n, 1)
			wcfg.FieldSize = 400 * math.Sqrt(float64(n)/400)
			env, err := wsn.NewEnv(wcfg)
			if err != nil {
				b.Fatal(err)
			}
			ccfg := core.DefaultConfig()
			ccfg.MaxHops = scaleHops(n)
			p, err := core.New(env, ccfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Run(1); err != nil {
				b.Fatal(err)
			}
			var ms runtime.MemStats
			var mallocs uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				env.ResampleReadings()
				runtime.ReadMemStats(&ms)
				before := ms.Mallocs
				b.StartTimer()
				// The wire round counter is 16-bit; wrap far below the limit.
				if _, err := p.RunRetaining(uint16(2 + i%60_000)); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				runtime.ReadMemStats(&ms)
				mallocs += ms.Mallocs - before
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(mallocs)/float64(b.N)/float64(n), "allocs/node")
		})
	}
}

func BenchmarkRoundCluster(b *testing.B) {
	benchProtocolRound(b, func(dep *Deployment) (Result, error) {
		return dep.RunCluster(ClusterOptions{})
	})
}

func BenchmarkRoundTAG(b *testing.B) {
	benchProtocolRound(b, func(dep *Deployment) (Result, error) {
		return dep.RunTAG()
	})
}

func BenchmarkRoundIPDA(b *testing.B) {
	benchProtocolRound(b, func(dep *Deployment) (Result, error) {
		return dep.RunIPDA(IPDAOptions{})
	})
}

// Primitive micro-benches for the hot algebra.

func BenchmarkFieldMul(b *testing.B) {
	x, y := field.New(123456789), field.New(987654321)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkFieldInv(b *testing.B) {
	x := field.New(123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Inv().Add(1)
	}
	_ = x
}

func benchAlgebra(b *testing.B, m int) {
	seeds := make([]field.Element, m)
	for i := range seeds {
		seeds[i] = shares.SeedFor(i)
	}
	algebra, err := shares.NewAlgebra(seeds)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Scratch reused across iterations, as the protocol's round loop does:
	// the timer then measures the algebra, not the allocator.
	all := make([]shares.Shares, m)
	assembled := make([]field.Element, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range all {
			algebra.GenerateInto(rng, field.New(uint64(j)), &all[j])
		}
		for j := 0; j < m; j++ {
			var col field.Element
			for k := 0; k < m; k++ {
				col = col.Add(all[k].ForMember[j])
			}
			assembled[j] = col
		}
		if _, err := algebra.RecoverSum(assembled); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterAlgebra(b *testing.B) {
	for _, m := range []int{3, 5, 8, 16} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) { benchAlgebra(b, m) })
	}
}

func BenchmarkDisclosureCheck(b *testing.B) {
	p, err := DisclosureProbability(PrivacyScenario{ClusterSize: 5, Px: 0.3}, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = p
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DisclosureProbability(PrivacyScenario{ClusterSize: 5, Px: 0.3}, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
