package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/experiment"
	"repro/internal/field"
	"repro/internal/shares"
)

// Experiment benches — one per table/figure of the evaluation (DESIGN.md
// §4). Each iteration regenerates the experiment in quick mode; run
// cmd/experiments for the full-fidelity sweeps.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiment.RunConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTableDensity(b *testing.B)      { benchExperiment(b, "T1-density") }
func BenchmarkTableClusterShape(b *testing.B) { benchExperiment(b, "T2-clusters") }
func BenchmarkFigCoverage(b *testing.B)       { benchExperiment(b, "F1-coverage") }
func BenchmarkFigOverhead(b *testing.B)       { benchExperiment(b, "F2-overhead") }
func BenchmarkFigAccuracy(b *testing.B)       { benchExperiment(b, "F3-accuracy") }
func BenchmarkFigPrivacy(b *testing.B)        { benchExperiment(b, "F4-privacy") }
func BenchmarkFigIntegrity(b *testing.B)      { benchExperiment(b, "F5-integrity") }
func BenchmarkFigAgreement(b *testing.B)      { benchExperiment(b, "F6-agreement") }
func BenchmarkFigLocalization(b *testing.B)   { benchExperiment(b, "F7-localization") }
func BenchmarkFigCollusion(b *testing.B)      { benchExperiment(b, "F8-collusion") }
func BenchmarkAblationKeyScheme(b *testing.B) { benchExperiment(b, "F9-keyscheme") }
func BenchmarkFigResilience(b *testing.B)     { benchExperiment(b, "F17-resilience") }

// Protocol round benches: one full aggregation round per iteration at the
// papers' N=400 reference density (lossy channel).

func benchProtocolRound(b *testing.B, run func(dep *Deployment) (Result, error)) {
	b.Helper()
	// Deploy once; each iteration Resets to a fresh per-iteration seed so the
	// timer measures the aggregation round, not topology construction.
	dep, err := NewDeployment(Options{Nodes: 400, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := dep.Reset(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := run(dep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundCluster(b *testing.B) {
	benchProtocolRound(b, func(dep *Deployment) (Result, error) {
		return dep.RunCluster(ClusterOptions{})
	})
}

func BenchmarkRoundTAG(b *testing.B) {
	benchProtocolRound(b, func(dep *Deployment) (Result, error) {
		return dep.RunTAG()
	})
}

func BenchmarkRoundIPDA(b *testing.B) {
	benchProtocolRound(b, func(dep *Deployment) (Result, error) {
		return dep.RunIPDA(IPDAOptions{})
	})
}

// Primitive micro-benches for the hot algebra.

func BenchmarkFieldMul(b *testing.B) {
	x, y := field.New(123456789), field.New(987654321)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkFieldInv(b *testing.B) {
	x := field.New(123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Inv().Add(1)
	}
	_ = x
}

func benchAlgebra(b *testing.B, m int) {
	seeds := make([]field.Element, m)
	for i := range seeds {
		seeds[i] = shares.SeedFor(i)
	}
	algebra, err := shares.NewAlgebra(seeds)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Scratch reused across iterations, as the protocol's round loop does:
	// the timer then measures the algebra, not the allocator.
	all := make([]shares.Shares, m)
	assembled := make([]field.Element, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range all {
			algebra.GenerateInto(rng, field.New(uint64(j)), &all[j])
		}
		for j := 0; j < m; j++ {
			var col field.Element
			for k := 0; k < m; k++ {
				col = col.Add(all[k].ForMember[j])
			}
			assembled[j] = col
		}
		if _, err := algebra.RecoverSum(assembled); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterAlgebra(b *testing.B) {
	for _, m := range []int{3, 5, 8, 16} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) { benchAlgebra(b, m) })
	}
}

func BenchmarkDisclosureCheck(b *testing.B) {
	p, err := DisclosureProbability(PrivacyScenario{ClusterSize: 5, Px: 0.3}, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = p
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DisclosureProbability(PrivacyScenario{ClusterSize: 5, Px: 0.3}, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
