// Quickstart: deploy a 400-node sensor network, run one round of each
// protocol, and compare what the base station sees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dep, err := repro.NewDeployment(repro.Options{Nodes: 400, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Deployed %d nodes (avg degree %.1f, connected=%v)\n",
		dep.Size(), dep.AverageDegree(), dep.Connected())
	fmt.Printf("Ground-truth sum of all readings: %d\n\n", dep.TrueSum())

	cluster, err := dep.RunCluster(repro.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tag, err := dep.RunTAG()
	if err != nil {
		log.Fatal(err)
	}
	ipda, err := dep.RunIPDA(repro.IPDAOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("protocol  reported      accuracy  participation  bytes     integrity")
	for _, r := range []repro.Result{cluster, tag, ipda} {
		verdict := "n/a"
		if r.Protocol != "tag" {
			verdict = fmt.Sprintf("accepted=%v", r.Accepted)
		}
		fmt.Printf("%-8s  %-12d  %-8.3f  %-13.3f  %-8d  %s\n",
			r.Protocol, r.ReportedSum, r.Accuracy(), r.ParticipationRate(), r.TxBytes, verdict)
	}

	fmt.Println("\nTAG is cheapest but leaks every reading to every neighbour and")
	fmt.Println("cannot detect tampering. The cluster protocol hides individual")
	fmt.Println("readings behind in-cluster secret sharing and lets cluster members")
	fmt.Println("witness the head's announced aggregate.")
}
