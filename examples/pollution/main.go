// Pollution walkthrough: inject a data-pollution attacker, show the base
// station rejecting the round, then localize the attacker in O(log N)
// bisection rounds and re-run cleanly with the attacker excluded.
//
//	go run ./examples/pollution
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	opts := repro.Options{Nodes: 400, Seed: 7}

	// A clean reference round.
	dep, err := repro.NewDeployment(opts)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := dep.RunCluster(repro.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean round:    sum=%d accepted=%v alarms=%d\n",
		clean.ReportedSum, clean.Accepted, clean.Alarms)

	// Compromise a cluster head.
	attacker, err := repro.PickPolluter(opts, false)
	if err != nil {
		log.Fatal(err)
	}
	if attacker <= 0 {
		log.Fatal("no suitable attacker in this topology")
	}
	fmt.Printf("\ncompromising cluster head %d: +7500 injected into its announce\n", attacker)

	dep2, err := repro.NewDeployment(opts)
	if err != nil {
		log.Fatal(err)
	}
	attacked, err := dep2.RunCluster(repro.ClusterOptions{
		Polluter:       attacker,
		PollutionDelta: 7500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacked round: sum=%d accepted=%v alarms=%d\n",
		attacked.ReportedSum, attacked.Accepted, attacked.Alarms)
	if attacked.Accepted {
		fmt.Println("unexpected: attack was not detected")
		return
	}

	// Localize by bisection over the cluster heads.
	dep3, err := repro.NewDeployment(opts)
	if err != nil {
		log.Fatal(err)
	}
	loc, err := dep3.LocalizePolluter(repro.ClusterOptions{
		Polluter:       attacker,
		PollutionDelta: 7500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocalization:   suspect=%d (truth %d) in %d rounds\n",
		loc.Suspect, attacker, loc.Rounds)
	if loc.Suspect == attacker {
		fmt.Println("the base station can now exclude the compromised head.")
	}
}
