// Privacy audit: quantify how hard it is for an eavesdropper to learn an
// individual sensor reading, sweeping the per-link compromise probability
// and the number of colluding cluster members. Disclosure is decided by
// exact linear algebra over the share field — a reading counts as exposed
// only when the adversary's knowledge uniquely determines it.
//
//	go run ./examples/privacyaudit
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const trials = 3000

	fmt.Println("Eavesdropping: P(disclose) vs link-compromise probability px")
	fmt.Println("px     m=3 (measured / closed-form)   m=5 (measured / closed-form)   iPDA l=2 (closed-form)")
	for _, px := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		m3, err := repro.DisclosureProbability(repro.PrivacyScenario{ClusterSize: 3, Px: px}, trials, 1)
		if err != nil {
			log.Fatal(err)
		}
		m5, err := repro.DisclosureProbability(repro.PrivacyScenario{ClusterSize: 5, Px: px}, trials, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %.4f / %.4f                 %.4f / %.4f                 %.4f\n",
			px,
			m3, repro.DisclosureClosedForm(px, 3),
			m5, repro.DisclosureClosedForm(px, 5),
			repro.IPDADisclosureClosedForm(px, 2, 3))
	}

	fmt.Println("\nCollusion: P(disclose) vs colluding members (m=5, px=0.2)")
	for c := 0; c < 5; c++ {
		p, err := repro.DisclosureProbability(
			repro.PrivacyScenario{ClusterSize: 5, Px: 0.2, Colluders: c}, trials, 3)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0; i < int(p*40); i++ {
			bar += "#"
		}
		fmt.Printf("colluders=%d  P=%.4f  %s\n", c, p, bar)
	}
	fmt.Println("\nReadings stay information-theoretically hidden until m-1 members")
	fmt.Println("collude; eavesdropping alone must break every share link of a victim.")
}
