// Smart-meter scenario: the advanced-metering motivation from the paper's
// introduction. A utility reads the neighbourhood's total consumption every
// hour. Individual household curves must stay private (occupancy profiling)
// and the totals must be tamper-evident (billing fraud).
//
// The deployment forms clusters once, then runs 24 hourly epochs on the
// retained structure with fresh readings each hour — the protocol's
// steady-state mode. From hour 18, a compromised aggregator starts shifting
// 400 kWh out of the peak-price bucket; the concentrator rejects exactly
// those epochs.
//
//	go run ./examples/smartmeter
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const meters = 256
	const attackHour = 18 // epoch numbering starts at 1: hour h = round h+1
	opts := repro.Options{
		Nodes:     meters + 1, // + the concentrator (base station)
		FieldSize: 320,
		Range:     60,
		Seed:      1001,
		Grid:      true,
	}

	// The attacker compromises one cluster head; it behaves honestly until
	// the evening peak. Same seed => PickPolluter's head exists in our run.
	polluter, err := repro.PickPolluter(opts, false)
	if err != nil {
		log.Fatal(err)
	}
	if polluter <= 0 {
		log.Fatal("no suitable aggregator to compromise")
	}

	dep, err := repro.NewDeployment(opts)
	if err != nil {
		log.Fatal(err)
	}
	day, err := dep.RunClusterRounds(24, repro.ClusterOptions{
		Polluter:       polluter,
		PollutionDelta: -400,
		PolluteFrom:    attackHour + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Advanced metering: 256 meters on a street grid, 24 hourly epochs")
	fmt.Println("hour  reported_kWh  accuracy  accepted")
	for hour, res := range day {
		marker := ""
		if hour >= attackHour {
			marker = fmt.Sprintf("  <- node %d under-reports 400 kWh", polluter)
		}
		fmt.Printf("%4d  %-12d  %-8.3f  %v%s\n",
			hour, res.ReportedSum, res.Accuracy(), res.Accepted, marker)
	}

	fmt.Println("\nEvery epoch from 18:00 on is rejected by the concentrator:")
	fmt.Println("cluster members witness the compromised head announcing totals")
	fmt.Println("inconsistent with the committed share vectors. Household readings")
	fmt.Println("were never visible to any single node throughout the day.")
}
