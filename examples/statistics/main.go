// Statistics queries: the paper reduces mean, count, variance, and
// (approximately) min/max to additive aggregation. This example answers all
// of them over one deployment while every individual reading stays hidden
// behind the in-cluster share algebra.
//
//	go run ./examples/statistics
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dep, err := repro.NewDeployment(repro.Options{Nodes: 350, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Deployment: %d nodes, readings uniform in [10, 100]\n\n", dep.Size())
	fmt.Println("query     answer     truth      rounds  accepted")

	queries := []struct {
		name string
		kind repro.QueryKind
	}{
		{"sum", repro.QuerySum},
		{"count", repro.QueryCount},
		{"average", repro.QueryAverage},
		{"variance", repro.QueryVariance},
		{"stddev", repro.QueryStdDev},
		{"min", repro.QueryMin},
		{"max", repro.QueryMax},
	}
	for _, q := range queries {
		ans, err := dep.RunQuery(q.kind, repro.ClusterOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %-9.1f  %-9.1f  %-6d  %v\n",
			q.name, ans.Value, ans.Truth, ans.Rounds, ans.Accepted)
	}

	fmt.Println("\nEach query compiles to additive components that travel together")
	fmt.Println("as one vector in a single aggregation round, so ratio statistics")
	fmt.Println("stay consistent even when clusters drop out. MIN/MAX use a")
	fmt.Println("16-bucket histogram reduction (exact at bucket resolution).")
}
