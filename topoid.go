package repro

import (
	"repro/internal/core"
	"repro/internal/topo"
)

// topoID converts a public node identifier into the internal type.
func topoID(id int) topo.NodeID { return topo.NodeID(id) }

// PickPolluter runs one clean round on a scratch copy of the deployment's
// configuration and returns a node ID suitable as a pollution attacker for
// the cluster protocol: a cluster head whose announce path reaches the base
// station. Returns -1 when none qualifies (e.g. a disconnected deployment).
//
// The scratch run uses the same seed, so the returned head also exists when
// the caller re-deploys with identical Options and an attack enabled.
func PickPolluter(o Options, needDirectChild bool) (int, error) {
	dep, err := NewDeployment(o)
	if err != nil {
		return -1, err
	}
	p, err := newCoreForPick(dep)
	if err != nil {
		return -1, err
	}
	if _, err := p.Run(1); err != nil {
		return -1, err
	}
	return int(p.PickAttacker(needDirectChild)), nil
}

// newCoreForPick builds a default cluster-protocol instance on a deployment.
func newCoreForPick(dep *Deployment) (*core.Protocol, error) {
	return core.New(dep.env, core.DefaultConfig())
}
