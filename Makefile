GO ?= go

.PHONY: check vet build test race bench-smoke bench f17-smoke

## check: the full local verify — vet, build, tests (race on the
## concurrency-sensitive packages), a quick resilience-experiment smoke,
## and a one-iteration benchmark smoke through the trend harness.
check: vet build test race f17-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/experiment/

## f17-smoke: quick pass over the degraded-recovery ablation — fails if the
## loss-injection path or subset recovery stops producing rows.
f17-smoke:
	$(GO) run ./cmd/experiments -quick -run F17-resilience

bench-smoke:
	$(GO) run ./cmd/benchtrend -quick

## bench: full benchmark run — writes a BENCH_<date>.json snapshot and
## gates against the previous one (see README "Performance").
bench:
	$(GO) run ./cmd/benchtrend
