GO ?= go

.PHONY: check vet build test race bench-smoke bench bench-gate f17-smoke f18-smoke trace-smoke service-smoke par-smoke fleet-smoke chaos-smoke metrics-smoke attack-smoke

## check: the full local verify — vet, build, tests (race on the
## concurrency-sensitive packages), quick resilience- and failover-
## experiment smokes, a traced-failover forensics smoke, the base-station
## service smoke, the fleet-coordinator smoke, the chaos availability
## drill, the telemetry/exposition smoke, the parallel-determinism smoke,
## a one-iteration benchmark smoke through the trend harness, and the
## deterministic allocation gate on the tracing-disabled hot path.
check: vet build test race f17-smoke f18-smoke trace-smoke service-smoke fleet-smoke chaos-smoke metrics-smoke attack-smoke par-smoke bench-smoke bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/experiment/ ./internal/station/ ./internal/fleet/
	$(GO) test -race -run 'Deputy|Takeover|HeadCrash|Churn|CrashRecover|Failover' ./internal/core/

## f17-smoke: quick pass over the degraded-recovery ablation — fails if the
## loss-injection path or subset recovery stops producing rows.
f17-smoke:
	$(GO) run ./cmd/experiments -quick -run F17-resilience

## f18-smoke: quick pass over the head-failover ablation — fails if the
## takeover/churn-repair path stops producing rows.
f18-smoke:
	$(GO) run ./cmd/experiments -quick -run F18-failover

## trace-smoke: record a full head-crash failover round through the flight
## recorder and assert that aggtrace can reconstruct it — the takeover claim
## must be present and its causal chain must reach majority corroboration.
trace-smoke:
	$(GO) run ./cmd/aggsim -nodes 120 -seed 11 -headcrash 0.9 -traceout trace-smoke.jsonl > /dev/null
	$(GO) run ./cmd/aggtrace -expect watchdog trace-smoke.jsonl
	$(GO) run ./cmd/aggtrace -why takeover trace-smoke.jsonl | grep corroborated > /dev/null
	@rm -f trace-smoke.jsonl
	@echo "trace-smoke OK: takeover reconstructed with corroboration"

## service-smoke: boot the aggd serving stack (4-worker pool + HTTP API) on
## an ephemeral port, require a served SUM to be bit-identical to the same
## deployment's offline RunQuery answer, then push a concurrent mixed-kind
## aggload burst through it with zero errors — all under the race detector,
## plus the SIGTERM graceful-drain path of the real daemon loop.
service-smoke:
	$(GO) test -race -count=1 -run 'TestServiceSmoke' ./internal/station/
	$(GO) test -race -count=1 -run 'TestServeQueryAndGracefulSIGTERM' ./cmd/aggd/
	@echo "service-smoke OK: served == offline, mixed-kind burst clean under -race"

## fleet-smoke: the coordinator's correctness gate — a 3-shard fleet must
## serve answers bit-identical to a single station AND the offline
## deployment (including a fanout where every shard agrees), and the
## drain-vs-submit-vs-cancel interleaving at the coordinator boundary must
## stay silent under the race detector.
fleet-smoke:
	$(GO) test -race -count=1 -run 'TestFleetSmoke|TestFleetDrainSubmitCancelRace' ./internal/fleet/
	@echo "fleet-smoke OK: fleet == station == offline, coordinator races clean"

## chaos-smoke: the self-healing gate — a seeded plan kills one of three
## shards mid-burst and the fleet must hold 99%+ availability, never serve
## an answer that differs from the offline reference, re-admit the shard,
## and leave a trace from which aggtrace -why outage rebuilds the
## crash → breaker-open → restart → half-open → closed incident; the -join
## proxy must ride the same window through its circuit breaker with
## degraded fan-outs. All under the race detector.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSmoke|TestProxyBreakerChaos|TestFleetDrainSubmitAllRace' ./internal/fleet/
	$(GO) run ./cmd/experiments -quick -run F19-availability
	@echo "chaos-smoke OK: 99%+ availability through a shard kill, breaker chain reconstructed"

## metrics-smoke: the observability gate — a sharded daemon under a
## mixed-kind burst must serve a /metricsz exposition that parses, with
## per-shard series that stay monotone across scrapes and agree with
## /statsz, and the request id returned on the wire must reconstruct into
## a fan-out span tree (forward → admit → run → done → merge) through
## aggtrace -why request; the telemetry record path must stay
## allocation-free (AllocsPerRun gate). Scrape-under-load runs with -race.
metrics-smoke:
	$(GO) test -race -count=1 -run 'TestMetricsSmoke' ./cmd/aggd/
	$(GO) test -count=1 -run 'TestAggtraceRequestSpanTree' ./cmd/aggtrace/
	$(GO) test -count=1 -run 'ZeroAlloc' ./internal/telemetry/
	@echo "metrics-smoke OK: exposition parses, series monotone, span tree reconstructed, record path alloc-free"

## attack-smoke: the adversary-campaign gate — the seeded campaign drill
## must detect 100% of effective tampering/forgery actions with zero false
## alarms on clean rounds (under -race, alongside the replay/sybil/takeover
## containment tests and the exhaustive reconstruction parity sweep); a
## recorded campaign must reconstruct through aggtrace -why breach (both a
## caught forgery and a silent collusion breach); and the disabled policy
## seam must stay allocation-free — the same ±2% allocs/op gate as
## bench-gate, since the MAC tap hooks sit on the round hot path.
attack-smoke:
	$(GO) test -race -count=1 -run 'TestDetectionGate|TestNoFalseAlarmsWithoutAttacker|TestCollusionReconstructsAtFullEavesdrop|TestReplayRejectedAsStale|TestTakeoverForgeryRebutted|TestSybilContained|TestCampaignTraceForensics' .
	$(GO) test -count=1 -run 'TestSystemMatchesKnowledge' ./internal/attack/
	$(GO) run ./cmd/aggsim -nodes 120 -seed 7 -rounds 3 -attack 'collude:2:1.0,tamper,replay,takeover' -traceout attack-smoke.jsonl > /dev/null
	$(GO) run ./cmd/aggtrace -expect attack attack-smoke.jsonl
	$(GO) run ./cmd/aggtrace -expect breach attack-smoke.jsonl
	$(GO) run ./cmd/aggtrace -why breach attack-smoke.jsonl | grep 'truth=' > /dev/null
	$(GO) run ./cmd/aggtrace -why breach attack-smoke.jsonl | grep 'own-row-forged' > /dev/null
	@rm -f attack-smoke.jsonl
	$(GO) run ./cmd/benchtrend -dry -metric allocs -threshold 0.02 \
		-bench '^BenchmarkRoundCluster$$' -benchtime 5x
	@echo "attack-smoke OK: forgeries detected, breaches reconstructed, tap seam alloc-free"

## par-smoke: the round engine's determinism gate — a parallel multi-round
## failover simulation (lossy radio, head crashes, churn repair) must report
## results bit-identical to the serial run, under the race detector so the
## share-preparation and batch-solve barriers are swept for data races.
par-smoke:
	$(GO) test -race -count=1 -run 'TestParallelMatchesSerial' .
	@echo "par-smoke OK: parallel rounds bit-identical to serial under -race"

bench-smoke:
	$(GO) run ./cmd/benchtrend -quick

## bench-gate: deterministic regression gate for the flight recorder's
## disabled path — allocs/op of the round benchmark must stay within 2% of
## the newest snapshot. Wall-clock is deliberately not judged here (it
## flakes on shared machines); `make bench` still gates both at 20%.
bench-gate:
	$(GO) run ./cmd/benchtrend -dry -metric allocs -threshold 0.02 \
		-bench '^BenchmarkRoundCluster$$' -benchtime 5x

## bench: full benchmark run — writes a BENCH_<date>.json snapshot and
## gates against the previous one (see README "Performance").
bench:
	$(GO) run ./cmd/benchtrend
