GO ?= go

.PHONY: check vet build test race bench-smoke bench

## check: the full local verify — vet, build, tests (race on the
## concurrency-sensitive packages), and a one-iteration benchmark smoke
## through the trend harness.
check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/experiment/

bench-smoke:
	$(GO) run ./cmd/benchtrend -quick

## bench: full benchmark run — writes a BENCH_<date>.json snapshot and
## gates against the previous one (see README "Performance").
bench:
	$(GO) run ./cmd/benchtrend
