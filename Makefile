GO ?= go

.PHONY: check vet build test race bench-smoke bench f17-smoke f18-smoke

## check: the full local verify — vet, build, tests (race on the
## concurrency-sensitive packages), quick resilience- and failover-
## experiment smokes, and a one-iteration benchmark smoke through the
## trend harness.
check: vet build test race f17-smoke f18-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/experiment/
	$(GO) test -race -run 'Deputy|Takeover|HeadCrash|Churn|CrashRecover|Failover' ./internal/core/

## f17-smoke: quick pass over the degraded-recovery ablation — fails if the
## loss-injection path or subset recovery stops producing rows.
f17-smoke:
	$(GO) run ./cmd/experiments -quick -run F17-resilience

## f18-smoke: quick pass over the head-failover ablation — fails if the
## takeover/churn-repair path stops producing rows.
f18-smoke:
	$(GO) run ./cmd/experiments -quick -run F18-failover

bench-smoke:
	$(GO) run ./cmd/benchtrend -quick

## bench: full benchmark run — writes a BENCH_<date>.json snapshot and
## gates against the previous one (see README "Performance").
bench:
	$(GO) run ./cmd/benchtrend
