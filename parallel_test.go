package repro

import (
	"reflect"
	"testing"
)

// parClusterRounds runs a multi-round failover simulation — lossy radio,
// per-round head crashes with reboot, cross-round churn repair — on a fresh
// deployment at the given worker-pool width.
func parClusterRounds(t *testing.T, par int) []Result {
	t.Helper()
	dep, err := NewDeployment(Options{Nodes: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	results, err := dep.RunClusterRounds(5, ClusterOptions{
		HeadCrashRate: 0.15,
		CrashRecover:  true,
		Parallelism:   par,
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestParallelMatchesSerial is the facade-level determinism gate behind
// `make par-smoke`: a parallel multi-round failover simulation must report
// exactly the serial run's results — same sums, counts, alarms, failover
// accounting, and traffic — because the worker pools only parallelise pure
// computation between deterministic serial passes. Run under -race this
// also sweeps the share-preparation and batch-solve barriers for races.
func TestParallelMatchesSerial(t *testing.T) {
	serial := parClusterRounds(t, 1)
	for _, par := range []int{0, 4} { // 0 = GOMAXPROCS
		parallel := parClusterRounds(t, par)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("par=%d diverged from serial:\nserial:   %+v\nparallel: %+v", par, serial, parallel)
		}
	}
}

// TestParallelismRejected pins the facade contract: negative widths are a
// construction-time error, not a knob that silently falls back.
func TestParallelismRejected(t *testing.T) {
	dep, err := NewDeployment(Options{Nodes: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.RunCluster(ClusterOptions{Parallelism: -2}); err == nil {
		t.Error("negative Parallelism accepted")
	}
}
