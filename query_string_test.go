package repro

import (
	"encoding/json"
	"strings"
	"testing"
)

var allKinds = []QueryKind{
	QuerySum, QueryCount, QueryAverage, QueryVariance, QueryStdDev, QueryMin, QueryMax,
}

var kindNames = map[QueryKind]string{
	QuerySum:      "sum",
	QueryCount:    "count",
	QueryAverage:  "average",
	QueryVariance: "variance",
	QueryStdDev:   "stddev",
	QueryMin:      "min",
	QueryMax:      "max",
}

func TestQueryKindStringAndParseRoundTrip(t *testing.T) {
	for _, k := range allKinds {
		want := kindNames[k]
		if got := k.String(); got != want {
			t.Errorf("QueryKind(%d).String() = %q, want %q", k, got, want)
		}
		back, err := ParseQueryKind(k.String())
		if err != nil {
			t.Errorf("ParseQueryKind(%q): %v", k.String(), err)
		}
		if back != k {
			t.Errorf("ParseQueryKind(%q) = %v, want %v", k.String(), back, k)
		}
	}
	// Aliases and normalization.
	for name, want := range map[string]QueryKind{
		"avg": QueryAverage, "var": QueryVariance,
		"SUM": QuerySum, " min ": QueryMin,
	} {
		got, err := ParseQueryKind(name)
		if err != nil || got != want {
			t.Errorf("ParseQueryKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseQueryKind("median"); err == nil {
		t.Error("ParseQueryKind accepted an unknown kind")
	}
	if got := QueryKind(0).String(); !strings.Contains(got, "queryKind(0)") {
		t.Errorf("invalid kind String() = %q", got)
	}
}

func TestQueryKindJSON(t *testing.T) {
	for _, k := range allKinds {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		if want := `"` + kindNames[k] + `"`; string(data) != want {
			t.Errorf("marshal %v = %s, want %s", k, data, want)
		}
		var back QueryKind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Errorf("unmarshal %s = %v, %v; want %v", data, back, err, k)
		}
	}
	if _, err := json.Marshal(QueryKind(99)); err == nil {
		t.Error("marshal of invalid kind succeeded")
	}
	var k QueryKind
	if err := json.Unmarshal([]byte(`"median"`), &k); err == nil {
		t.Error("unmarshal of unknown kind succeeded")
	}
	if err := json.Unmarshal([]byte(`7`), &k); err == nil {
		t.Error("unmarshal of a numeric kind succeeded — the wire format is by name")
	}
}

// TestQueryAnswerString covers every kind plus both verdicts and the alarm
// suffix: one line, kind=value, truth, participation, verdict.
func TestQueryAnswerString(t *testing.T) {
	round := Result{TrueCount: 100, Participants: 96}
	for _, k := range allKinds {
		a := QueryAnswer{Kind: k, Value: 54.5, Truth: 55.125, Accepted: true, Round: round}
		got := a.String()
		want := kindNames[k] + "=54.500 (truth 55.125, participation 0.960, accepted)"
		if got != want {
			t.Errorf("String() for %s:\n got %q\nwant %q", kindNames[k], got, want)
		}
	}
	rejected := QueryAnswer{
		Kind: QuerySum, Value: 9999, Truth: 1234, Accepted: false,
		Round: Result{TrueCount: 100, Participants: 100, Alarms: 2},
	}
	want := "sum=9999.000 (truth 1234.000, participation 1.000, REJECTED, 2 alarms)"
	if got := rejected.String(); got != want {
		t.Errorf("rejected String():\n got %q\nwant %q", got, want)
	}
}

func TestQueryAnswerAccessors(t *testing.T) {
	a := QueryAnswer{Round: Result{TrueCount: 50, Participants: 25, Alarms: 3}}
	if got := a.Participation(); got != 0.5 {
		t.Errorf("Participation() = %v, want 0.5", got)
	}
	if got := a.Alarms(); got != 3 {
		t.Errorf("Alarms() = %v, want 3", got)
	}
}
